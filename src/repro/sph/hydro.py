"""Pure-hydrodynamics SPH driver (no gravity, no transport).

The minimal evolution loop for gas-dynamics validation problems — most
importantly the Sod shock tube, where the SPH solution is compared
against the exact Riemann solution (:mod:`repro.sph.riemann`).  Same
building blocks as the supernova driver: adaptive-h density, the
conservative momentum/energy pair, Monaghan viscosity, CFL stepping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .density import adapt_smoothing
from .eos import IdealGas
from .forces import ViscosityParams, compute_sph_forces

__all__ = ["HydroSimulation", "sod_tube_particles"]


@dataclass
class HydroSimulation:
    """Self-contained SPH gas evolution."""

    positions: np.ndarray
    velocities: np.ndarray
    masses: np.ndarray
    u: np.ndarray
    eos: IdealGas = field(default_factory=IdealGas)
    visc: ViscosityParams = field(default_factory=ViscosityParams)
    n_target: int = 32
    cfl: float = 0.25
    time: float = 0.0
    _h: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.positions = np.ascontiguousarray(self.positions, dtype=np.float64)
        self.velocities = np.ascontiguousarray(self.velocities, dtype=np.float64)
        self.masses = np.ascontiguousarray(self.masses, dtype=np.float64)
        self.u = np.ascontiguousarray(self.u, dtype=np.float64)
        n = self.positions.shape[0]
        if self.positions.shape != (n, 3) or self.velocities.shape != (n, 3):
            raise ValueError("positions and velocities must be (N, 3)")
        if self.masses.shape != (n,) or self.u.shape != (n,):
            raise ValueError("masses and u must be (N,)")

    def density(self) -> np.ndarray:
        """Current SPH density (caller order)."""
        tree, dens = adapt_smoothing(self.positions, self.masses, self._h, n_target=self.n_target)
        inv = np.empty_like(tree.order)
        inv[tree.order] = np.arange(tree.order.size)
        self._h = dens.h[inv]
        return dens.rho[inv]

    def step(self, dt: float | None = None) -> float:
        """One forward step; returns the dt used (CFL if not given)."""
        tree, dens = adapt_smoothing(self.positions, self.masses, self._h, n_target=self.n_target)
        inv = np.empty_like(tree.order)
        inv[tree.order] = np.arange(tree.order.size)
        rho_t = dens.rho
        u_t = self.u[tree.order]
        p = self.eos.pressure(rho_t, u_t)
        cs = self.eos.sound_speed(rho_t, u_t)
        f = compute_sph_forces(
            tree, dens.neighbors, rho=rho_t, pressure=p, sound_speed=cs,
            velocities=self.velocities[tree.order], h=dens.h, visc=self.visc,
        )
        if dt is None:
            dt = self.cfl * float(dens.h.min()) / max(f.max_signal_speed, 1e-12)
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.velocities += f.dv_dt[inv] * dt
        self.positions += self.velocities * dt
        self.u = np.maximum(self.u + f.du_dt[inv] * dt, 0.0)
        self._h = dens.h[inv]
        self.time += dt
        return dt

    def run_to(self, t_final: float, max_steps: int = 10_000) -> int:
        """CFL-step until ``t_final``; returns the step count."""
        if t_final <= self.time:
            raise ValueError("t_final must exceed the current time")
        steps = 0
        while self.time < t_final:
            self.step()
            steps += 1
            if steps > max_steps:
                raise RuntimeError("too many steps; CFL collapse?")
        return steps

    def total_energy(self) -> float:
        ke = 0.5 * float(np.sum(self.masses * np.einsum("ij,ij->i", self.velocities, self.velocities)))
        return ke + float(np.sum(self.masses * self.u))

    # -- checkpoint / restart --------------------------------------------
    def checkpoint(self, directory: str) -> str:
        """Write a restartable snapshot (see repro.core.snapshot)."""
        from ..core.snapshot import write_snapshot

        arrays = {
            "positions": self.positions,
            "velocities": self.velocities,
            "masses": self.masses,
            "u": self.u,
        }
        if self._h is not None:
            arrays["h"] = self._h
        return write_snapshot(
            directory, arrays,
            meta={
                "kind": "hydro", "time": self.time,
                "gamma": self.eos.gamma, "n_target": self.n_target, "cfl": self.cfl,
                "visc_alpha": self.visc.alpha, "visc_beta": self.visc.beta,
            },
        )

    @classmethod
    def restore(cls, directory: str) -> "HydroSimulation":
        """Resume exactly from a checkpoint (bit-deterministic)."""
        from .eos import IdealGas
        from ..core.snapshot import SnapshotError, read_snapshot

        snap = read_snapshot(directory)
        if snap.meta.get("kind") != "hydro":
            raise SnapshotError("snapshot is not a hydro simulation checkpoint")
        sim = cls(
            snap["positions"].copy(), snap["velocities"].copy(),
            snap["masses"].copy(), snap["u"].copy(),
            eos=IdealGas(gamma=snap.meta["gamma"]),
            visc=ViscosityParams(alpha=snap.meta["visc_alpha"], beta=snap.meta["visc_beta"]),
            n_target=int(snap.meta["n_target"]), cfl=float(snap.meta["cfl"]),
        )
        sim.time = float(snap.meta["time"])
        if "h" in snap.arrays:
            sim._h = snap["h"].copy()
        return sim


def sod_tube_particles(
    nx_left: int = 24,
    cross: int = 5,
    width: float = 0.15,
    gamma: float = 1.4,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Equal-mass particle realization of the Sod initial condition.

    Left half (x < 0): rho = 1, p = 1 on lattice spacing ``a``; right
    half: rho = 1/8, p = 0.1 on spacing ``2a`` (equal masses give the
    8:1 density jump).  Returns (positions, velocities, masses, u).
    The tube spans x in [-0.5, 0.5] with an open cross-section of
    ``width`` — sample profiles away from the transverse edges.
    """
    if nx_left < 4 or cross < 2:
        raise ValueError("resolution too low for a meaningful tube")
    a = 0.5 / nx_left
    y = (np.arange(cross) + 0.5) * width / cross

    def lattice(x_vals, spacing_cross):
        yy = (np.arange(spacing_cross) + 0.5) * width / spacing_cross
        pts = []
        for x in x_vals:
            for yv in yy:
                for zv in yy:
                    pts.append((x, yv, zv))
        return np.array(pts)

    x_left = -0.5 + (np.arange(nx_left) + 0.5) * a
    left = lattice(x_left, cross)
    nx_right = nx_left // 2
    cross_r = max(cross // 2, 2)
    x_right = (np.arange(nx_right) + 0.5) * (0.5 / nx_right)
    right = lattice(x_right, cross_r)

    positions = np.concatenate([left, right])
    n_l, n_r = left.shape[0], right.shape[0]
    m = 1.0 * a * (width / cross) ** 2  # rho_left * cell volume
    masses = np.full(n_l + n_r, m)
    u = np.empty(n_l + n_r)
    u[:n_l] = 1.0 / ((gamma - 1.0) * 1.0)  # p=1, rho=1
    u[n_l:] = 0.1 / ((gamma - 1.0) * 0.125)  # p=0.1, rho=1/8
    velocities = np.zeros_like(positions)
    return positions, velocities, masses, u
