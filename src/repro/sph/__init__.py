"""Smoothed particle hydrodynamics on the tree (Section 4.4, Figure 8).

The supernova half of the paper: SPH kernels, tree-based neighbor
search, density with adaptive smoothing, momentum/energy equations with
artificial viscosity, the stiffening nuclear EOS, gray flux-limited-
diffusion neutrino transport, and the rotating core-collapse setup and
driver that reproduce the Figure 8 angular-momentum diagnostic.
"""

from .collapse import (
    CollapseConfig,
    CollapseHistory,
    CollapseSimulation,
    add_rotation,
    angular_momentum_by_angle,
    cone_vs_equator_angular_momentum,
    lane_emden,
    polytrope_particles,
)
from .density import DensityResult, adapt_smoothing, density_sum, initial_smoothing
from .eos import HybridCollapseEOS, IdealGas, Polytrope
from .forces import SphForces, ViscosityParams, compute_sph_forces
from .kernel import SUPPORT_RADIUS, dw_dr_cubic, kernel_self_value, w_cubic
from .neighbors import NeighborLists, find_neighbors, find_neighbors_reference
from .hydro import HydroSimulation, sod_tube_particles
from .neutrino import FldParams, NeutrinoStep, flux_limiter, neutrino_step
from .riemann import (
    SOD_LEFT,
    SOD_RIGHT,
    RiemannState,
    sample,
    sod_solution,
    solve_star,
)

__all__ = [
    "SUPPORT_RADIUS",
    "w_cubic",
    "dw_dr_cubic",
    "kernel_self_value",
    "NeighborLists",
    "find_neighbors",
    "find_neighbors_reference",
    "DensityResult",
    "density_sum",
    "adapt_smoothing",
    "initial_smoothing",
    "IdealGas",
    "Polytrope",
    "HybridCollapseEOS",
    "ViscosityParams",
    "SphForces",
    "compute_sph_forces",
    "FldParams",
    "NeutrinoStep",
    "flux_limiter",
    "neutrino_step",
    "lane_emden",
    "polytrope_particles",
    "add_rotation",
    "angular_momentum_by_angle",
    "cone_vs_equator_angular_momentum",
    "CollapseConfig",
    "CollapseHistory",
    "CollapseSimulation",
    "HydroSimulation",
    "sod_tube_particles",
    "RiemannState",
    "SOD_LEFT",
    "SOD_RIGHT",
    "solve_star",
    "sample",
    "sod_solution",
]
