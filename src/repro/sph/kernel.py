"""Smoothing kernels for SPH (Section 4.4).

The standard cubic-spline (M4) kernel with compact support ``2h``:

.. math::

    W(q) = \\frac{1}{\\pi h^3}
    \\begin{cases}
      1 - \\tfrac{3}{2} q^2 + \\tfrac{3}{4} q^3 & 0 \\le q < 1 \\\\
      \\tfrac{1}{4} (2 - q)^3                   & 1 \\le q < 2 \\\\
      0                                          & q \\ge 2
    \\end{cases},
    \\qquad q = r/h

with the analytic radial derivative for the force equations.  All
functions are vectorized over arrays of ``r`` (and matching ``h``).
"""

from __future__ import annotations

import numpy as np

__all__ = ["SUPPORT_RADIUS", "w_cubic", "dw_dr_cubic", "kernel_self_value"]

#: Kernel support in units of h.
SUPPORT_RADIUS = 2.0

_SIGMA = 1.0 / np.pi


def w_cubic(r: np.ndarray, h: np.ndarray | float) -> np.ndarray:
    """Cubic-spline kernel value W(r, h)."""
    r = np.asarray(r, dtype=np.float64)
    h = np.asarray(h, dtype=np.float64)
    if np.any(h <= 0):
        raise ValueError("smoothing lengths must be positive")
    q = r / h
    out = np.zeros(np.broadcast(r, h).shape)
    inner = q < 1.0
    mid = (q >= 1.0) & (q < 2.0)
    qb = np.broadcast_to(q, out.shape)
    out[inner] = 1.0 - 1.5 * qb[inner] ** 2 + 0.75 * qb[inner] ** 3
    out[mid] = 0.25 * (2.0 - qb[mid]) ** 3
    return _SIGMA * out / np.broadcast_to(h, out.shape) ** 3


def dw_dr_cubic(r: np.ndarray, h: np.ndarray | float) -> np.ndarray:
    """Radial derivative dW/dr (non-positive everywhere)."""
    r = np.asarray(r, dtype=np.float64)
    h = np.asarray(h, dtype=np.float64)
    if np.any(h <= 0):
        raise ValueError("smoothing lengths must be positive")
    q = r / h
    out = np.zeros(np.broadcast(r, h).shape)
    inner = q < 1.0
    mid = (q >= 1.0) & (q < 2.0)
    qb = np.broadcast_to(q, out.shape)
    out[inner] = -3.0 * qb[inner] + 2.25 * qb[inner] ** 2
    out[mid] = -0.75 * (2.0 - qb[mid]) ** 2
    return _SIGMA * out / np.broadcast_to(h, out.shape) ** 4


def kernel_self_value(h: np.ndarray | float) -> np.ndarray:
    """W(0, h), the self-contribution in density sums."""
    return _SIGMA / np.asarray(h, dtype=np.float64) ** 3
