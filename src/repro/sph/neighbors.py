"""Tree-based SPH neighbor search.

The paper's supernova code works "by implementing the smooth particle
hydrodynamics formalism onto the tree structure described above for
N-body studies": neighbor finding rides on the same hashed oct-tree.
This module does exactly that — for each leaf group of a built
:class:`~repro.core.tree.Tree`, it walks the tree pruning cells farther
from the group than the search radius, gathers candidate particles
from surviving leaves, and distance-filters per particle.

The result is a CSR-style neighbor list (offsets + flat indices, both
in *tree order*), which the density and force loops consume with pure
array arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.tree import Tree

__all__ = ["NeighborLists", "find_neighbors", "symmetric_pairs"]


@dataclass
class NeighborLists:
    """CSR neighbor structure over Morton-sorted (tree-order) particles."""

    offsets: np.ndarray  # (N+1,)
    neighbors: np.ndarray  # flat indices, tree order
    search_radii: np.ndarray  # (N,) radii used

    @property
    def n_particles(self) -> int:
        return self.offsets.shape[0] - 1

    def of(self, i: int) -> np.ndarray:
        """Neighbor indices of tree-order particle ``i`` (includes self)."""
        return self.neighbors[self.offsets[i] : self.offsets[i + 1]]

    def counts(self) -> np.ndarray:
        return np.diff(self.offsets)


def symmetric_pairs(lists: "NeighborLists") -> tuple[np.ndarray, np.ndarray]:
    """Unique unordered interaction pairs (i < j) from gather lists.

    With per-particle smoothing lengths the gather lists are
    *asymmetric* (i may see j inside 2h_i while j does not see i inside
    2h_j).  Conservative SPH sums need each pair exactly once, acting
    on both members — the union of both directions, deduplicated.
    """
    n = lists.n_particles
    i_idx = np.repeat(np.arange(n, dtype=np.int64), lists.counts())
    j_idx = lists.neighbors
    keep = i_idx != j_idx
    a = np.minimum(i_idx[keep], j_idx[keep])
    b = np.maximum(i_idx[keep], j_idx[keep])
    packed = np.unique(a * np.int64(n) + b)
    return packed // n, packed % n


def _candidate_leaves(tree: Tree, center: np.ndarray, radius: float) -> list[int]:
    """Leaves whose bounding sphere intersects the search sphere."""
    found: list[int] = []
    stack = [0]
    while stack:
        c = stack.pop()
        # Conservative prune: cell bounding sphere around its COM.
        d = float(np.linalg.norm(tree.com[c] - center))
        if d - tree.bmax[c] > radius:
            continue
        if tree.n_children[c] == 0:
            found.append(c)
        else:
            fc = tree.first_child[c]
            stack.extend(range(fc, fc + tree.n_children[c]))
    return found


def find_neighbors(tree: Tree, radii: np.ndarray) -> NeighborLists:
    """All particles within ``radii[i]`` of particle ``i`` (tree order).

    ``radii`` is per-particle (typically ``2 h_i``); the search uses
    the max radius within each leaf group so gather-scatter symmetry at
    equal radii is exact.
    """
    radii = np.asarray(radii, dtype=np.float64)
    n = tree.n_particles
    if radii.shape != (n,):
        raise ValueError("radii must have one entry per particle")
    if np.any(radii <= 0):
        raise ValueError("search radii must be positive")
    lists: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * n
    for leaf in tree.leaf_ids:
        sl = tree.particles_of(leaf)
        sinks = tree.positions[sl]
        r_group = radii[sl]
        center = tree.com[leaf]
        group_reach = float(np.linalg.norm(sinks - center, axis=1).max() + r_group.max())
        cand_leaves = _candidate_leaves(tree, center, group_reach)
        cand = np.concatenate(
            [np.arange(tree.start[c], tree.start[c] + tree.count[c]) for c in cand_leaves]
        )
        dr = sinks[:, None, :] - tree.positions[cand][None, :, :]
        dist2 = np.einsum("ijk,ijk->ij", dr, dr)
        within = dist2 <= (r_group[:, None] ** 2)
        for row, i in enumerate(range(sl.start, sl.stop)):
            lists[i] = cand[within[row]]
    offsets = np.zeros(n + 1, dtype=np.int64)
    offsets[1:] = np.cumsum([lst.size for lst in lists])
    flat = np.concatenate(lists) if n else np.empty(0, dtype=np.int64)
    return NeighborLists(offsets, flat, radii)
