"""Tree-based SPH neighbor search.

The paper's supernova code works "by implementing the smooth particle
hydrodynamics formalism onto the tree structure described above for
N-body studies": neighbor finding rides on the same hashed oct-tree.
For each leaf group of a built :class:`~repro.core.tree.Tree`, the tree
is walked pruning cells farther from the group than the search radius,
candidate particles are gathered from surviving leaves, and
distance-filtered per particle.

:func:`find_neighbors` runs that walk *batched*: one shared frontier
pass prunes the (group x candidate-cell) set for every group at once —
the same level-synchronous traversal
:func:`repro.core.traversal.build_interaction_lists` uses — and the
candidate filter is evaluated as flat chunked pair arrays.  The
historical per-group walker is kept as
:func:`find_neighbors_reference`; both return the same neighbor *sets*
(the batched path emits each particle's list sorted by candidate-leaf
emission order, the reference by its stack order).

The result is a CSR-style neighbor list (offsets + flat indices, both
in *tree order*), which the density and force loops consume with pure
array arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.backend import get_backend
from ..core.traversal import DEFAULT_PAIR_CHUNK, _csr_by_group, _expand_children
from ..core.tree import Tree
from ..obs import NULL

__all__ = [
    "NeighborLists",
    "find_neighbors",
    "find_neighbors_reference",
    "symmetric_pairs",
]


@dataclass
class NeighborLists:
    """CSR neighbor structure over Morton-sorted (tree-order) particles."""

    offsets: np.ndarray  # (N+1,)
    neighbors: np.ndarray  # flat indices, tree order
    search_radii: np.ndarray  # (N,) radii used

    @property
    def n_particles(self) -> int:
        return self.offsets.shape[0] - 1

    def of(self, i: int) -> np.ndarray:
        """Neighbor indices of tree-order particle ``i`` (includes self)."""
        return self.neighbors[self.offsets[i] : self.offsets[i + 1]]

    def counts(self) -> np.ndarray:
        return np.diff(self.offsets)


def symmetric_pairs(lists: "NeighborLists") -> tuple[np.ndarray, np.ndarray]:
    """Unique unordered interaction pairs (i < j) from gather lists.

    With per-particle smoothing lengths the gather lists are
    *asymmetric* (i may see j inside 2h_i while j does not see i inside
    2h_j).  Conservative SPH sums need each pair exactly once, acting
    on both members — the union of both directions, deduplicated.
    """
    n = lists.n_particles
    i_idx = np.repeat(np.arange(n, dtype=np.int64), lists.counts())
    j_idx = lists.neighbors
    keep = i_idx != j_idx
    a = np.minimum(i_idx[keep], j_idx[keep])
    b = np.maximum(i_idx[keep], j_idx[keep])
    packed = np.unique(a * np.int64(n) + b)
    return packed // n, packed % n


def _candidate_leaves(tree: Tree, center: np.ndarray, radius: float) -> list[int]:
    """Leaves whose bounding sphere intersects the search sphere."""
    found: list[int] = []
    stack = [0]
    while stack:
        c = stack.pop()
        # Conservative prune: cell bounding sphere around its COM.
        d = float(np.linalg.norm(tree.com[c] - center))
        if d - tree.bmax[c] > radius:
            continue
        if tree.n_children[c] == 0:
            found.append(c)
        else:
            fc = tree.first_child[c]
            stack.extend(range(fc, fc + tree.n_children[c]))
    return found


def _validate_radii(tree: Tree, radii: np.ndarray) -> np.ndarray:
    radii = np.asarray(radii, dtype=np.float64)
    if radii.shape != (tree.n_particles,):
        raise ValueError("radii must have one entry per particle")
    if np.any(radii <= 0):
        raise ValueError("search radii must be positive")
    return radii


def find_neighbors(
    tree: Tree,
    radii: np.ndarray,
    *,
    pair_chunk: int = DEFAULT_PAIR_CHUNK,
    backend=None,
    observer=NULL,
) -> NeighborLists:
    """All particles within ``radii[i]`` of particle ``i`` (tree order).

    ``radii`` is per-particle (typically ``2 h_i``); the search uses
    the max radius within each leaf group so gather-scatter symmetry at
    equal radii is exact.  The tree is walked for all groups per
    frontier pass, and the candidate distance filter runs over flat
    (sink, candidate) pair arrays chunked to ``pair_chunk``,
    evaluated by the selected kernel backend (``pair_within`` +
    ``bincount_sum`` — exact comparisons and integer counts, so the
    neighbor sets are backend-independent).
    """
    radii = _validate_radii(tree, radii)
    n = tree.n_particles
    if pair_chunk < 1:
        raise ValueError("pair_chunk must be positive")
    kb = get_backend(backend)
    with observer.span("sph.neighbors", cat="sph"):
        groups = tree.leaf_ids
        n_groups = groups.shape[0]
        g_start = tree.start[groups]
        g_cnt = tree.count[groups]

        # Per-group search reach: the group's spatial extent around its
        # COM plus the largest member radius.  Leaf particle runs
        # partition [0, N) but leaf_ids is not in run order, so segment
        # through a start-sorted view.
        centers = tree.com[groups]
        run_order = np.argsort(g_start, kind="stable")
        g_of = np.repeat(run_order, g_cnt[run_order])  # particle -> group
        d = np.linalg.norm(tree.positions - centers[g_of], axis=1)
        reach = np.empty(n_groups)
        reach[run_order] = (
            np.maximum.reduceat(d, g_start[run_order])
            + np.maximum.reduceat(radii, g_start[run_order])
        )

        # Level-synchronous pruning walk: every pass distance-tests one
        # flat (group, cell) array against the whole frontier.
        g_idx = np.arange(n_groups, dtype=np.int64)
        cells = np.zeros(n_groups, dtype=np.int64)
        out_g: list[np.ndarray] = []
        out_c: list[np.ndarray] = []
        mac_tests = 0
        while cells.size:
            mac_tests += cells.size
            dvec = tree.com[cells] - centers[g_idx]
            dist = np.sqrt(np.einsum("ij,ij->i", dvec, dvec))
            keep = dist - tree.bmax[cells] <= reach[g_idx]
            g_idx, cells = g_idx[keep], cells[keep]
            is_leaf = tree.n_children[cells] == 0
            out_g.append(g_idx[is_leaf])
            out_c.append(cells[is_leaf])
            g_idx, cells = _expand_children(tree, g_idx[~is_leaf], cells[~is_leaf])
        og = np.concatenate(out_g) if out_g else np.empty(0, dtype=np.int64)
        oc = np.concatenate(out_c) if out_c else np.empty(0, dtype=np.int64)
        leaf_off, leaf_ids = _csr_by_group(og, oc, n_groups)

        # Expand candidate leaves to flat particle ids, CSR by group.
        lcnt = tree.count[leaf_ids]
        tot = int(lcnt.sum())
        cand_flat = np.arange(tot, dtype=np.int64)
        cand_flat += np.repeat(tree.start[leaf_ids] - (np.cumsum(lcnt) - lcnt), lcnt)
        # Candidates per group: total leaf counts within its leaf slice.
        cum = np.zeros(leaf_ids.shape[0] + 1, dtype=np.int64)
        np.cumsum(lcnt, out=cum[1:])
        cand_off = cum[leaf_off]
        nc = np.diff(cand_off)

        # Distance filter over flat (sink, candidate) pairs, chunked.
        # Groups are processed in particle-run order so the surviving
        # pairs come out sorted by sink id — the CSR layout directly.
        g_start_s = g_start[run_order]
        g_cnt_s = g_cnt[run_order]
        nc_s = nc[run_order]
        cand_off_s = cand_off[run_order]
        ppg = g_cnt_s * nc_s  # pairs per group
        cum_p = np.zeros(n_groups + 1, dtype=np.int64)
        np.cumsum(ppg, out=cum_p[1:])
        neigh_counts = np.zeros(n, dtype=np.int64)
        kept_j: list[np.ndarray] = []
        pos = tree.positions
        r2 = radii * radii
        lo = 0
        while lo < n_groups:
            hi = int(np.searchsorted(cum_p, cum_p[lo] + pair_chunk, side="right")) - 1
            hi = min(max(hi, lo + 1), n_groups)  # always make progress
            sel = np.arange(lo, hi, dtype=np.int64)
            total = int(cum_p[hi] - cum_p[lo])
            if total == 0:
                lo = hi
                continue
            gp = np.repeat(sel, ppg[sel])
            local = np.arange(total, dtype=np.int64)
            local -= np.repeat(cum_p[sel] - cum_p[lo], ppg[sel])
            nc_p = nc_s[gp]
            si = local // nc_p
            ci = local - si * nc_p
            i_pair = g_start_s[gp] + si
            j_pair = cand_flat[cand_off_s[gp] + ci]
            within = kb.pair_within(pos, i_pair, j_pair, r2[i_pair])
            ik = i_pair[within]
            neigh_counts += kb.bincount_sum(ik, None, n)
            kept_j.append(j_pair[within])
            lo = hi
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(neigh_counts, out=offsets[1:])
        flat = np.concatenate(kept_j) if kept_j else np.empty(0, dtype=np.int64)
        observer.count("sph.neighbor_mac_tests", mac_tests)
        observer.count("sph.neighbor_candidates", int(ppg.sum()))
    return NeighborLists(offsets, flat, radii)


def find_neighbors_reference(tree: Tree, radii: np.ndarray) -> NeighborLists:
    """The pre-batching per-group walker (pinning reference).

    Same neighbor sets as :func:`find_neighbors`; per-particle list
    order follows its depth-first stack order instead of the batched
    walker's level order.
    """
    radii = _validate_radii(tree, radii)
    n = tree.n_particles
    lists: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * n
    for leaf in tree.leaf_ids:
        sl = tree.particles_of(leaf)
        sinks = tree.positions[sl]
        r_group = radii[sl]
        center = tree.com[leaf]
        group_reach = float(np.linalg.norm(sinks - center, axis=1).max() + r_group.max())
        cand_leaves = _candidate_leaves(tree, center, group_reach)
        cand = np.concatenate(
            [np.arange(tree.start[c], tree.start[c] + tree.count[c]) for c in cand_leaves]
        )
        dr = sinks[:, None, :] - tree.positions[cand][None, :, :]
        dist2 = np.einsum("ijk,ijk->ij", dr, dr)
        within = dist2 <= (r_group[:, None] ** 2)
        for row, i in enumerate(range(sl.start, sl.stop)):
            lists[i] = cand[within[row]]
    offsets = np.zeros(n + 1, dtype=np.int64)
    offsets[1:] = np.cumsum([lst.size for lst in lists])
    flat = np.concatenate(lists) if n else np.empty(0, dtype=np.int64)
    return NeighborLists(offsets, flat, radii)
