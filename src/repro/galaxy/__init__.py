"""Galactic dynamics: dissipationless halo collapse (Section 4.1, ref [18])."""

from .halo import (
    axis_ratios,
    cold_collapse_ics,
    density_profile,
    half_mass_radius,
    spin_alignment,
    virial_ratio,
)

__all__ = [
    "cold_collapse_ics",
    "virial_ratio",
    "density_profile",
    "axis_ratios",
    "spin_alignment",
    "half_mass_radius",
]
