"""Galactic dynamics: dissipationless halo collapse and its diagnostics.

The first application in Section 4.1's list ("modules to solve problems
in galactic dynamics [18]"): Warren, Quinn, Salmon & Zurek 1992, *Dark
halos formed via dissipationless collapse: I. Shapes and alignment of
angular momentum*.  This module provides the cold-collapse initial
conditions of that study and the diagnostics its title names:

* :func:`cold_collapse_ics` — a cold, slowly rotating, perturbed
  sphere that collapses violently and virializes into a triaxial halo;
* :func:`virial_ratio` — ``2T/|W|``, approaching 1 at equilibrium;
* :func:`density_profile` — spherically averaged rho(r);
* :func:`axis_ratios` — b/a and c/a from the iterated inertia tensor;
* :func:`spin_alignment` — the cosine between the total angular
  momentum and the shortest principal axis (the paper-[18] result is
  that J aligns with the minor axis).
"""

from __future__ import annotations

import numpy as np

from ..core.gravity import direct_accelerations

__all__ = [
    "cold_collapse_ics",
    "virial_ratio",
    "density_profile",
    "axis_ratios",
    "spin_alignment",
    "half_mass_radius",
]


def cold_collapse_ics(
    n: int = 500,
    *,
    spin: float = 0.1,
    perturbation: float = 0.2,
    velocity_dispersion: float = 0.02,
    seed: int = 1992,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Cold, perturbed, slowly rotating unit sphere (unit total mass).

    ``spin`` sets a solid-body rotation about z; ``perturbation``
    modulates the density with a quadrupolar distortion so the collapse
    breaks spherical symmetry (as cosmological infall does); a tiny
    ``velocity_dispersion`` regularizes the center.
    """
    if n < 10:
        raise ValueError("need at least 10 particles")
    if not 0 <= perturbation < 1:
        raise ValueError("perturbation must be in [0, 1)")
    rng = np.random.default_rng(seed)
    r = rng.random(n) ** (1.0 / 3.0)
    d = rng.standard_normal((n, 3))
    d /= np.linalg.norm(d, axis=1, keepdims=True)
    pos = r[:, None] * d
    # Quadrupolar squash: stretch x, squeeze z.
    pos[:, 0] *= 1.0 + perturbation
    pos[:, 2] *= 1.0 - perturbation
    vel = velocity_dispersion * rng.standard_normal((n, 3))
    vel[:, 0] += -spin * pos[:, 1]
    vel[:, 1] += spin * pos[:, 0]
    masses = np.full(n, 1.0 / n)
    # Remove net momentum so the halo stays put.
    vel -= (masses[:, None] * vel).sum(axis=0) / masses.sum()
    return pos, vel, masses


def virial_ratio(
    positions: np.ndarray, velocities: np.ndarray, masses: np.ndarray, eps: float = 0.05
) -> float:
    """2T / |W|: 1 at virial equilibrium, << 1 for a cold system."""
    ke = 0.5 * float(np.sum(masses * np.einsum("ij,ij->i", velocities, velocities)))
    pe = direct_accelerations(positions, masses, eps=eps).potential_energy(masses)
    if pe >= 0:
        raise ValueError("potential energy must be negative for a bound system")
    return 2.0 * ke / abs(pe)


def half_mass_radius(positions: np.ndarray, masses: np.ndarray) -> float:
    """Radius (about the COM) enclosing half the mass."""
    com = (masses[:, None] * positions).sum(axis=0) / masses.sum()
    r = np.linalg.norm(positions - com, axis=1)
    order = np.argsort(r)
    cum = np.cumsum(masses[order])
    idx = int(np.searchsorted(cum, 0.5 * masses.sum()))
    return float(r[order[min(idx, r.size - 1)]])


def density_profile(
    positions: np.ndarray, masses: np.ndarray, n_bins: int = 12, r_max: float | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """(bin centers, rho(r)) about the center of mass, log-spaced bins."""
    if n_bins < 2:
        raise ValueError("need at least 2 bins")
    com = (masses[:, None] * positions).sum(axis=0) / masses.sum()
    r = np.linalg.norm(positions - com, axis=1)
    r_max = float(r.max()) if r_max is None else r_max
    r_min = max(np.percentile(r, 1.0), 1e-6 * r_max)
    edges = np.geomspace(r_min, r_max, n_bins + 1)
    rho = np.zeros(n_bins)
    centers = np.sqrt(edges[:-1] * edges[1:])
    for b in range(n_bins):
        sel = (r >= edges[b]) & (r < edges[b + 1])
        shell = 4.0 / 3.0 * np.pi * (edges[b + 1] ** 3 - edges[b] ** 3)
        rho[b] = masses[sel].sum() / shell
    return centers, rho


def axis_ratios(
    positions: np.ndarray,
    masses: np.ndarray,
    iterations: int = 5,
    weight: str = "reduced",
) -> tuple[float, float, np.ndarray]:
    """(b/a, c/a, principal axes) from the iterated shape tensor.

    ``weight="reduced"`` is the halo-shape standard (each particle
    weighted by 1/ellipsoidal-radius^2, emphasizing the inner body;
    mildly biased toward round for smooth profiles).  ``weight="none"``
    is the plain second-moment tensor, exact for any homoscedastic
    distribution.  Axes are returned as rows, longest first.
    """
    if weight not in ("reduced", "none"):
        raise ValueError("weight must be 'reduced' or 'none'")
    com = (masses[:, None] * positions).sum(axis=0) / masses.sum()
    x = positions - com
    if weight == "reduced":
        # Use the half-mass body to avoid outlier domination.
        r = np.linalg.norm(x, axis=1)
        keep = r <= np.percentile(r, 70.0)
        x = x[keep]
        w0 = masses[keep]
    else:
        w0 = masses
    ratios = np.ones(2)
    axes = np.eye(3)
    for _ in range(max(iterations, 1)):
        if weight == "reduced":
            y = x @ axes.T
            ell2 = y[:, 0] ** 2 + (y[:, 1] / max(ratios[0], 1e-3)) ** 2 + (
                y[:, 2] / max(ratios[1], 1e-3)
            ) ** 2
            w = w0 / np.maximum(ell2, 1e-12)
        else:
            w = w0
        tensor = np.einsum("i,ij,ik->jk", w, x, x)
        evals, evecs = np.linalg.eigh(tensor)
        order = np.argsort(evals)[::-1]  # longest axis first
        evals = np.maximum(evals[order], 1e-30)
        axes = evecs[:, order].T
        ratios = np.sqrt(evals[1:] / evals[0])
        if weight == "none":
            break  # no iteration needed without the ellipsoidal weight
    return float(ratios[0]), float(ratios[1]), axes


def spin_alignment(
    positions: np.ndarray, velocities: np.ndarray, masses: np.ndarray
) -> float:
    """|cos| of the angle between total J and the minor (shortest) axis.

    Reference [18]'s headline: dissipationless halos spin about their
    minor axis, so this tends toward 1 after collapse.
    """
    com = (masses[:, None] * positions).sum(axis=0) / masses.sum()
    vcom = (masses[:, None] * velocities).sum(axis=0) / masses.sum()
    x = positions - com
    v = velocities - vcom
    j = (masses[:, None] * np.cross(x, v)).sum(axis=0)
    j_norm = np.linalg.norm(j)
    if j_norm == 0:
        raise ValueError("system has zero angular momentum")
    _, _, axes = axis_ratios(positions, masses)
    minor = axes[2]
    return float(abs(j @ minor) / j_norm)
