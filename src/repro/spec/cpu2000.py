"""SPEC CPU2000 score model (Section 3.5, Table 2 rows CINT/CFP).

SPEC CPU2000 is a proprietary suite, so this is a pure model (see
DESIGN.md substitution table): the node's SPECint2000 and SPECfp2000
marks are represented by the two-component CPU/memory sensitivity
profiles calibrated from Table 2 (normal 790 / 742; slow-mem and
slow-CPU columns pin the decomposition), plus the Section 3.5
price/performance arithmetic ($888 per node without network share,
$1.20 per unit of SPECfp, and the comparison against the 2119-SPECfp
HP rx2600 that would need to cost under ~$2500 to win).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.clocking import ClockConfig, NORMAL, WorkloadProfile, table2_profiles

__all__ = [
    "SPECINT2000_SS",
    "SPECFP2000_SS",
    "NODE_COST_NO_NETWORK",
    "HP_RX2600_SPECFP",
    "spec_profiles",
    "spec_scores",
    "price_per_specfp",
    "breakeven_price_vs",
]

#: Measured marks on the Shuttle XPC node with the Intel 7.1 compilers.
SPECINT2000_SS = 790.0
SPECFP2000_SS = 742.0

#: Per-node cost neglecting network and racks (Section 3.5).
NODE_COST_NO_NETWORK = 888.0

#: The fastest SPECfp machine cited by the paper (HP Integrity rx2600,
#: 1.5 GHz Itanium 2).
HP_RX2600_SPECFP = 2119.0


def spec_profiles() -> dict[str, WorkloadProfile]:
    """CINT2000 and CFP2000 sensitivity profiles from Table 2."""
    profiles = table2_profiles()
    return {"CINT2000": profiles["CINT2000"], "CFP2000": profiles["CFP2000"]}


def spec_scores(config: ClockConfig = NORMAL) -> dict[str, float]:
    """Modeled SPEC marks under a clock configuration."""
    return {name: profile.rate(config) for name, profile in spec_profiles().items()}


@dataclass(frozen=True)
class PricePerformance:
    score: float
    cost: float

    @property
    def dollars_per_unit(self) -> float:
        return self.cost / self.score


def price_per_specfp(node_cost: float = NODE_COST_NO_NETWORK) -> float:
    """Dollars per unit of SPECfp for an XPC node ($1.20 in the paper)."""
    if node_cost <= 0:
        raise ValueError("node_cost must be positive")
    return PricePerformance(SPECFP2000_SS, node_cost).dollars_per_unit


def breakeven_price_vs(
    competitor_specfp: float = HP_RX2600_SPECFP, node_cost: float = NODE_COST_NO_NETWORK
) -> float:
    """Price below which a competitor beats the XPC's $/SPECfp.

    Section 3.5: "In order to beat the SPECfp price/performance of a
    Shuttle XPC node, the HP system would have to cost less than
    $2500."
    """
    if competitor_specfp <= 0:
        raise ValueError("competitor_specfp must be positive")
    return competitor_specfp * price_per_specfp(node_cost)
