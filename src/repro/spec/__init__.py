"""SPEC CPU2000 score model (Section 3.5)."""

from .cpu2000 import (
    HP_RX2600_SPECFP,
    NODE_COST_NO_NETWORK,
    SPECFP2000_SS,
    SPECINT2000_SS,
    breakeven_price_vs,
    price_per_specfp,
    spec_profiles,
    spec_scores,
)

__all__ = [
    "SPECINT2000_SS",
    "SPECFP2000_SS",
    "NODE_COST_NO_NETWORK",
    "HP_RX2600_SPECFP",
    "spec_profiles",
    "spec_scores",
    "price_per_specfp",
    "breakeven_price_vs",
]
