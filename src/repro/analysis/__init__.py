"""Reporting helpers and the experiment registry."""

from .experiments import EXPERIMENTS, Experiment, by_id
from .tables import comparison_rows, format_comparison, format_table

__all__ = [
    "format_table",
    "format_comparison",
    "comparison_rows",
    "Experiment",
    "EXPERIMENTS",
    "by_id",
]
