"""Registry of reproduced experiments.

One entry per paper table/figure/section result, tying the experiment
id used throughout DESIGN.md and EXPERIMENTS.md to the modules that
implement it and the benchmark that regenerates it.  Tests assert the
registry covers every evaluation artifact of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Experiment", "EXPERIMENTS", "by_id"]


@dataclass(frozen=True)
class Experiment:
    id: str
    artifact: str
    description: str
    modules: tuple[str, ...]
    bench: str


EXPERIMENTS: tuple[Experiment, ...] = (
    Experiment(
        "T1", "Table 1", "Space Simulator bill of materials ($483,855; $1646/node)",
        ("repro.cluster.bom",), "benchmarks/bench_table1_bom.py",
    ),
    Experiment(
        "F2", "Figure 2", "NetPIPE bandwidth vs message size, five stacks (TCP 779 Mbit/s)",
        ("repro.network.stacks", "repro.network.netpipe"), "benchmarks/bench_fig2_netpipe.py",
    ),
    Experiment(
        "S31", "Section 3.1", "Switch backplane: 6000 Mbit/s cross-module; 8 Gbit trunk limit",
        ("repro.network.switch", "repro.network.topology"), "benchmarks/bench_s31_backplane.py",
    ),
    Experiment(
        "T2", "Table 2", "STREAM/NPB/SPEC/Linpack under four BIOS clock configurations",
        ("repro.machine.clocking", "repro.stream", "repro.nas", "repro.spec", "repro.linpack"),
        "benchmarks/bench_table2_clocking.py",
    ),
    Experiment(
        "F3", "Figure 3", "Cluster Linpack: 665.1 (mpich) -> 757.1 Gflop/s (LAM); 63.9 c/Mflops",
        ("repro.linpack.model", "repro.cluster.top500"), "benchmarks/bench_fig3_linpack.py",
    ),
    Experiment(
        "T3", "Table 3", "64-processor class C NPB vs ASCI Q",
        ("repro.nas.perf",), "benchmarks/bench_table3_npb_c64.py",
    ),
    Experiment(
        "T4", "Table 4", "256-processor class D NPB vs ASCI Q",
        ("repro.nas.perf",), "benchmarks/bench_table4_npb_d256.py",
    ),
    Experiment(
        "F4", "Figure 4", "NPB class D scaling on the Space Simulator",
        ("repro.nas.perf",), "benchmarks/bench_fig4_npb_scaling_d.py",
    ),
    Experiment(
        "F5", "Figure 5", "NPB class C scaling incl. the LU L2 super-linearity",
        ("repro.nas.perf",), "benchmarks/bench_fig5_npb_scaling_c.py",
    ),
    Experiment(
        "T5", "Table 5", "Gravity micro-kernel, libm vs Karp, eleven processors",
        ("repro.core.kernels", "repro.machine.specs"), "benchmarks/bench_table5_gravity_kernel.py",
    ),
    Experiment(
        "T6", "Table 6", "Historical treecode performance 1993-2003",
        ("repro.core.parallel", "repro.machine.specs"), "benchmarks/bench_table6_treecode_history.py",
    ),
    Experiment(
        "F6", "Figure 6", "Morton load-balancing curve and 2-D tree",
        ("repro.core.keys", "repro.core.domain", "repro.core.tree"), "benchmarks/bench_fig6_morton.py",
    ),
    Experiment(
        "F7", "Figure 7 / S4.3", "Cosmology run: box realization + 134M-particle run model",
        ("repro.cosmology",), "benchmarks/bench_fig7_cosmology.py",
    ),
    Experiment(
        "F8", "Figure 8 / S4.4", "Rotating core collapse: equator/pole angular momentum",
        ("repro.sph",), "benchmarks/bench_fig8_supernova.py",
    ),
    Experiment(
        "T7", "Table 7", "Loki bill of materials ($51,379)",
        ("repro.cluster.bom",), "benchmarks/bench_table7_loki.py",
    ),
    Experiment(
        "S21", "Section 2.1", "Component failure statistics, nine months, 294 nodes",
        ("repro.cluster.reliability",), "benchmarks/bench_s21_reliability.py",
    ),
    Experiment(
        "S35", "Section 3.5", "SPEC CPU2000 price/performance ($1.20 per SPECfp)",
        ("repro.spec", "repro.cluster.bom"), "benchmarks/bench_s35_spec.py",
    ),
    Experiment(
        "S5", "Section 5", "Moore's-law price/performance analysis Loki -> SS",
        ("repro.cluster.moore",), "benchmarks/bench_s5_moore.py",
    ),
)


def by_id(experiment_id: str) -> Experiment:
    for e in EXPERIMENTS:
        if e.id == experiment_id:
            return e
    raise KeyError(f"unknown experiment {experiment_id!r}")
