"""ASCII table rendering for the benchmark harness.

Every bench regenerates a paper table/figure as rows of numbers; these
helpers print them in an aligned, diff-friendly layout and compute the
paper-vs-model comparison columns recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "comparison_rows", "format_comparison"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 10000 or abs(value) < 0.01:
            return f"{value:.4g}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Render rows under headers with right-aligned numeric columns."""
    str_rows = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def comparison_rows(
    labels: Sequence[str], paper: Sequence[float], measured: Sequence[float]
) -> list[list[Any]]:
    """Rows of (label, paper, ours, ratio) for EXPERIMENTS.md tables."""
    if not (len(labels) == len(paper) == len(measured)):
        raise ValueError("labels, paper, measured must have matching lengths")
    rows = []
    for label, p, m in zip(labels, paper, measured):
        ratio = m / p if p else float("inf")
        rows.append([label, p, m, ratio])
    return rows


def format_comparison(
    labels: Sequence[str],
    paper: Sequence[float],
    measured: Sequence[float],
    title: str = "",
    value_name: str = "value",
) -> str:
    """The standard paper-vs-reproduction table."""
    rows = comparison_rows(labels, paper, measured)
    return format_table(
        ["item", f"paper {value_name}", f"ours {value_name}", "ours/paper"], rows, title
    )
