"""STREAM memory-bandwidth benchmark (Table 2 rows 1-4)."""

from .stream import (
    KERNELS,
    StreamResult,
    modeled_stream,
    run_stream,
    stream_table2_row,
)

__all__ = ["KERNELS", "StreamResult", "run_stream", "modeled_stream", "stream_table2_row"]
