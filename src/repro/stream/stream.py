"""STREAM memory-bandwidth benchmark: real kernels + node model.

Table 2's first four rows are McCalpin's STREAM kernels measured on the
Shuttle XPC node under four clock configurations.  This module provides

* :func:`run_stream` — the four kernels executed for real with NumPy on
  the host (with result verification, as the original STREAM does);
* :func:`modeled_stream` — the rates a :class:`NodeSpec` predicts,
  using per-kernel ratios calibrated from the paper's normal column
  (add/triad run ~3% faster than copy/scale on the P4 because the
  2-load/1-store pattern uses the bus slightly better);
* :func:`stream_table2_row` — the Table 2 row for a clock config, via
  the two-component sensitivity profiles.

STREAM counts bytes moved: copy/scale move 16 bytes per element, add/
triad 24; rates are Mbyte/s of *application* bytes (no write-allocate
accounting), matching the numbers the paper reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..machine.clocking import ClockConfig, table2_profiles
from ..machine.node import NodeSpec, SPACE_SIMULATOR_NODE

__all__ = ["StreamResult", "KERNELS", "run_stream", "modeled_stream", "stream_table2_row"]

#: Kernel name -> bytes moved per element (reads + writes).
KERNELS: dict[str, int] = {"copy": 16, "scale": 16, "add": 24, "triad": 24}

#: Per-kernel rate relative to copy, calibrated from Table 2's normal
#: column (add 1237.2 / copy 1203.5 etc.).
_KERNEL_RATIO = {"copy": 1.0, "scale": 1201.8 / 1203.5, "add": 1237.2 / 1203.5, "triad": 1238.2 / 1203.5}


@dataclass(frozen=True)
class StreamResult:
    """One kernel's measured performance."""

    kernel: str
    mbytes_s: float
    seconds: float
    verified: bool


def run_stream(n: int = 2_000_000, repeats: int = 5, scalar: float = 3.0) -> dict[str, StreamResult]:
    """Execute the four STREAM kernels on this host and verify results.

    ``n`` elements of float64 per array (the STREAM rule of thumb wants
    arrays well beyond cache; 2M x 8 B x 3 arrays = 48 MB).  The best
    (fastest) repetition is reported, as STREAM specifies.
    """
    if n < 1 or repeats < 1:
        raise ValueError("n and repeats must be positive")
    a = np.full(n, 1.0)
    b = np.full(n, 2.0)
    c = np.zeros(n)
    results: dict[str, StreamResult] = {}

    def timed(fn) -> float:
        best = np.inf
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    t = timed(lambda: np.copyto(c, a))
    results["copy"] = StreamResult("copy", KERNELS["copy"] * n / t / 1e6, t, bool(np.all(c == a)))
    t = timed(lambda: np.multiply(c, scalar, out=b))
    results["scale"] = StreamResult("scale", KERNELS["scale"] * n / t / 1e6, t, bool(np.all(b == scalar * c)))
    t = timed(lambda: np.add(a, b, out=c))
    results["add"] = StreamResult("add", KERNELS["add"] * n / t / 1e6, t, bool(np.all(c == a + b)))
    t = timed(lambda: np.add(a, scalar * b, out=c))  # triad: a + s*b
    results["triad"] = StreamResult("triad", KERNELS["triad"] * n / t / 1e6, t, bool(np.all(c == a + scalar * b)))
    return results


def modeled_stream(node: NodeSpec = SPACE_SIMULATOR_NODE) -> dict[str, float]:
    """Modeled Mbyte/s for each kernel on a node."""
    return {k: node.stream_mbytes_s * ratio for k, ratio in _KERNEL_RATIO.items()}


def stream_table2_row(config: ClockConfig) -> dict[str, float]:
    """The Table 2 STREAM row predicted for a clock configuration."""
    profiles = table2_profiles()
    return {k: profiles[k].rate(config) for k in KERNELS}
