"""Boundary integral method for the exterior Laplace problem.

The last entry in Section 4.1's list of modules built on the generic
tree design: *"… as well as fluid-dynamical problems using smoothed
particle hydrodynamics, a vortex particle method and boundary integral
methods."*

We solve the exterior Dirichlet problem for the Laplace equation with a
single-layer potential: given a closed surface discretized into
collocation panels with centroids ``x_i`` and areas ``A_i``, find the
source density ``sigma`` such that

.. math::

    \\phi(x_i) = \\sum_j \\frac{\\sigma_j A_j}{4\\pi |x_i - x_j|}
              = \\phi_\\mathrm{bc}(x_i).

The dense matrix-vector product is the same 1/r pairwise kernel as
gravity, so the **tree-accelerated matvec** reuses the hashed oct-tree
verbatim (panels become "particles" of mass ``sigma A``), and the
system is solved matrix-free with conjugate gradients on the normal
equations (the single-layer operator is symmetric positive definite on
closed surfaces, so plain CG applies).

Validation: a sphere held at constant potential has uniform density
``sigma = phi R`` producing the exact exterior field ``phi(r) =
phi_bc R / r`` — checked in the tests and the bench example.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.gravity import direct_accelerations, tree_accelerations

__all__ = ["PanelSurface", "sphere_panels", "single_layer_matvec", "solve_dirichlet", "exterior_potential"]

_INV_4PI = 1.0 / (4.0 * np.pi)


@dataclass
class PanelSurface:
    """Collocation discretization of a closed surface."""

    centroids: np.ndarray  # (N, 3)
    areas: np.ndarray  # (N,)
    normals: np.ndarray  # (N, 3), outward

    def __post_init__(self) -> None:
        n = self.centroids.shape[0]
        if self.centroids.shape != (n, 3) or self.areas.shape != (n,) or self.normals.shape != (n, 3):
            raise ValueError("inconsistent panel arrays")
        if np.any(self.areas <= 0):
            raise ValueError("panel areas must be positive")

    @property
    def n_panels(self) -> int:
        return self.centroids.shape[0]

    @property
    def total_area(self) -> float:
        return float(self.areas.sum())


def sphere_panels(n_panels: int = 400, radius: float = 1.0) -> PanelSurface:
    """Near-uniform panels on a sphere via the Fibonacci lattice."""
    if n_panels < 16:
        raise ValueError("need at least 16 panels")
    if radius <= 0:
        raise ValueError("radius must be positive")
    i = np.arange(n_panels) + 0.5
    phi = np.arccos(1.0 - 2.0 * i / n_panels)
    theta = np.pi * (1.0 + np.sqrt(5.0)) * i
    normals = np.column_stack([
        np.sin(phi) * np.cos(theta),
        np.sin(phi) * np.sin(theta),
        np.cos(phi),
    ])
    centroids = radius * normals
    areas = np.full(n_panels, 4.0 * np.pi * radius**2 / n_panels)
    return PanelSurface(centroids, areas, normals)


def _self_term(surface: PanelSurface) -> np.ndarray:
    """Diagonal (self-panel) contribution of the single-layer operator.

    A flat panel of area A acting on its own centroid contributes
    approximately ``sqrt(A / pi) / 2`` (the exact value for a disc of
    equal area) times ``sigma``.
    """
    return 0.5 * np.sqrt(surface.areas / np.pi)


def single_layer_matvec(
    surface: PanelSurface, sigma: np.ndarray, *, theta: float | None = 0.4
) -> np.ndarray:
    """phi = S sigma, tree-accelerated (set ``theta=None`` for direct).

    Exploits the identity that the single-layer potential of panel
    charges ``q_j = sigma_j A_j`` equals (minus) the gravitational
    potential of point masses ``q_j`` over 4 pi, plus the regularized
    self term.
    """
    sigma = np.asarray(sigma, dtype=np.float64)
    if sigma.shape != (surface.n_panels,):
        raise ValueError("sigma must have one entry per panel")
    charges = sigma * surface.areas
    # Gravity potentials are -G sum m / r with self-interaction
    # excluded; flip the sign and add the analytic self term.
    signed = np.sign(charges)
    mags = np.abs(charges)
    # tree_accelerations requires non-negative masses; superpose the
    # positive and negative charge sets.
    out = np.zeros(surface.n_panels)
    for s in (1.0, -1.0):
        sel = signed == s
        if not np.any(sel):
            continue
        if theta is None:
            res = direct_accelerations(surface.centroids, np.where(sel, mags, 0.0), eps=0.0)
        else:
            res = tree_accelerations(surface.centroids, np.where(sel, mags, 0.0), theta=theta, eps=0.0)
        out += -s * res.potentials
    return _INV_4PI * out + _self_term(surface) * sigma


def solve_dirichlet(
    surface: PanelSurface,
    phi_bc: np.ndarray,
    *,
    theta: float | None = 0.4,
    tol: float = 1e-8,
    max_iters: int = 400,
) -> tuple[np.ndarray, int]:
    """Solve ``S sigma = phi_bc`` by conjugate gradients; returns (sigma, iters)."""
    phi_bc = np.asarray(phi_bc, dtype=np.float64)
    if phi_bc.shape != (surface.n_panels,):
        raise ValueError("phi_bc must have one entry per panel")
    sigma = np.zeros_like(phi_bc)
    r = phi_bc - single_layer_matvec(surface, sigma, theta=theta)
    p = r.copy()
    rho = float(r @ r)
    target = tol * np.linalg.norm(phi_bc)
    for it in range(1, max_iters + 1):
        q = single_layer_matvec(surface, p, theta=theta)
        denom = float(p @ q)
        if denom <= 0:
            break  # operator should be SPD; bail on breakdown
        alpha = rho / denom
        sigma += alpha * p
        r -= alpha * q
        rho_new = float(r @ r)
        if np.sqrt(rho_new) < target:
            return sigma, it
        p = r + (rho_new / rho) * p
        rho = rho_new
    return sigma, max_iters


def exterior_potential(
    surface: PanelSurface, sigma: np.ndarray, points: np.ndarray
) -> np.ndarray:
    """Evaluate the single-layer potential at exterior points (direct)."""
    points = np.asarray(points, dtype=np.float64)
    charges = sigma * surface.areas
    dr = points[:, None, :] - surface.centroids[None, :, :]
    r = np.sqrt(np.einsum("ijk,ijk->ij", dr, dr))
    if np.any(r < 1e-12):
        raise ValueError("evaluation points must not coincide with panels")
    return _INV_4PI * (1.0 / r) @ charges
