"""Boundary integral methods on the tree (Section 4.1).

Exterior Laplace solver via a single-layer potential with
tree-accelerated matrix-free matvecs — the fourth of the paper's
"generic design" application modules (N-body, SPH, vortex particles,
boundary integrals).
"""

from .laplace import (
    PanelSurface,
    exterior_potential,
    single_layer_matvec,
    solve_dirichlet,
    sphere_panels,
)

__all__ = [
    "PanelSurface",
    "sphere_panels",
    "single_layer_matvec",
    "solve_dirichlet",
    "exterior_potential",
]
