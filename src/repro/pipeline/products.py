"""Typed observable products: what a pipeline run is *for*.

The paper's two science figures are the targets: Figure 7's 125-Mpc
LCDM box is summarized by a halo mass function and a matter power
spectrum, Figure 8's rotating core collapse by a neutrino light curve.
:func:`repro.pipeline.run_pipeline` emits all three as one
:class:`PipelineProducts` value.

Products are frozen dataclasses of plain JSON scalars and tuples —
like scenario specs, they round-trip through ``to_dict`` /
``from_dict`` so a campaign's result store holds them verbatim and
results are bit-comparable across processes.  :meth:`PipelineProducts.summary`
flattens each product to named scalars (``n_halos``, ``pk_total``,
``time_to_peak`` ...), which is the unit of *distribution validation*:
an ensemble of summaries feeds
:func:`repro.pipeline.ensemble_statistics`, and ``bench_pipeline.py``
gates the resulting moments and quantiles against committed envelopes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

__all__ = [
    "HMF_BIN_EDGES",
    "HaloMassFunction",
    "MatterPowerSpectrum",
    "LightCurve",
    "PipelineProducts",
    "summaries_of",
]

#: Halo membership-count bin edges for the mass function (log-2 bins,
#: the N(M) diagnostic of the Fig-7 workload at campaign scale).
HMF_BIN_EDGES = (2, 4, 8, 16, 32, 64, 128, 256)


@dataclass(frozen=True)
class HaloMassFunction:
    """FoF halo counts per membership bin (Fig-7 N(M) analogue).

    ``counts[i]`` is the number of halos with
    ``bin_edges[i] <= members < bin_edges[i+1]``.
    """

    bin_edges: tuple
    counts: tuple
    n_halos: int
    largest: int

    def to_dict(self) -> dict:
        return {
            "bin_edges": list(self.bin_edges),
            "counts": list(self.counts),
            "n_halos": self.n_halos,
            "largest": self.largest,
        }

    @classmethod
    def from_dict(cls, d: Mapping) -> "HaloMassFunction":
        return cls(
            bin_edges=tuple(d["bin_edges"]),
            counts=tuple(d["counts"]),
            n_halos=int(d["n_halos"]),
            largest=int(d["largest"]),
        )


@dataclass(frozen=True)
class MatterPowerSpectrum:
    """Binned P(k) measured from the evolved particle load (Fig-7)."""

    k: tuple
    power: tuple

    def to_dict(self) -> dict:
        return {"k": list(self.k), "power": list(self.power)}

    @classmethod
    def from_dict(cls, d: Mapping) -> "MatterPowerSpectrum":
        return cls(k=tuple(d["k"]), power=tuple(d["power"]))

    @property
    def total(self) -> float:
        """Sum of binned power — the scalar the envelopes gate."""
        return float(sum(self.power))


@dataclass(frozen=True)
class LightCurve:
    """Neutrino light curve of the core collapse (Fig-8 analogue).

    ``time_to_peak`` and ``peak_luminosity`` locate the burst;
    ``bounced`` records whether the core reached nuclear density and
    rebounded (the Fig-8 qualitative outcome).
    """

    times: tuple
    luminosity: tuple
    central_density: tuple
    bounced: bool

    def to_dict(self) -> dict:
        return {
            "times": list(self.times),
            "luminosity": list(self.luminosity),
            "central_density": list(self.central_density),
            "bounced": self.bounced,
        }

    @classmethod
    def from_dict(cls, d: Mapping) -> "LightCurve":
        return cls(
            times=tuple(d["times"]),
            luminosity=tuple(d["luminosity"]),
            central_density=tuple(d["central_density"]),
            bounced=bool(d["bounced"]),
        )

    @property
    def peak_luminosity(self) -> float:
        return float(max(self.luminosity)) if self.luminosity else 0.0

    @property
    def time_to_peak(self) -> float:
        """Time of the luminosity maximum (0.0 for an empty curve)."""
        if not self.luminosity:
            return 0.0
        return float(self.times[int(np.argmax(self.luminosity))])

    @property
    def max_density(self) -> float:
        return float(max(self.central_density)) if self.central_density else 0.0


@dataclass(frozen=True)
class PipelineProducts:
    """Everything one pipeline scenario emits, as pure data.

    ``fingerprint`` is the scenario's campaign identity (blake2b of the
    canonical spec dict), so a product can always be traced back to the
    exact spec that produced it.
    """

    fingerprint: str
    mass_function: HaloMassFunction
    power_spectrum: MatterPowerSpectrum
    light_curve: LightCurve
    a_final: float
    density_rms: float
    rms_displacement: float
    structure_steps: int
    sn_seed: int

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "mass_function": self.mass_function.to_dict(),
            "power_spectrum": self.power_spectrum.to_dict(),
            "light_curve": self.light_curve.to_dict(),
            "a_final": self.a_final,
            "density_rms": self.density_rms,
            "rms_displacement": self.rms_displacement,
            "structure_steps": self.structure_steps,
            "sn_seed": self.sn_seed,
        }

    @classmethod
    def from_dict(cls, d: Mapping) -> "PipelineProducts":
        return cls(
            fingerprint=str(d["fingerprint"]),
            mass_function=HaloMassFunction.from_dict(d["mass_function"]),
            power_spectrum=MatterPowerSpectrum.from_dict(d["power_spectrum"]),
            light_curve=LightCurve.from_dict(d["light_curve"]),
            a_final=float(d["a_final"]),
            density_rms=float(d["density_rms"]),
            rms_displacement=float(d["rms_displacement"]),
            structure_steps=int(d["structure_steps"]),
            sn_seed=int(d["sn_seed"]),
        )

    def summary(self) -> dict:
        """Flat JSON scalars — the unit of distribution validation."""
        lc = self.light_curve
        return {
            "a_final": self.a_final,
            "density_rms": self.density_rms,
            "rms_displacement": self.rms_displacement,
            "structure_steps": self.structure_steps,
            "n_halos": self.mass_function.n_halos,
            "largest_halo": self.mass_function.largest,
            "pk_total": self.power_spectrum.total,
            "peak_luminosity": lc.peak_luminosity,
            "time_to_peak": lc.time_to_peak,
            "max_density": lc.max_density,
            "bounced": int(lc.bounced),
        }


def summaries_of(results: Sequence[Mapping]) -> list[dict]:
    """Pull the ``summary`` dicts out of campaign result payloads."""
    return [dict(r["summary"]) for r in results]
