"""The pipeline's stages: declared dataflow over the existing physics.

Each :class:`Stage` wraps one existing subsystem entry point
(``repro.cosmology`` ICs / PM evolution / FoF / P(k),
``repro.sph`` core collapse) behind a uniform contract: a pure
function of ``(spec, state, backend)`` that reads only its declared
``inputs`` from the state dict and returns exactly its declared
``outputs``.  The driver enforces the declaration at runtime, which is
what makes each stage independently checkpointable — the state dict
*is* the restart payload, split into numpy arrays (stored as ``.npy``
snapshots) and JSON scalars (stored in the commit metadata).

The chain is physical, not just sequential: the supernova stage's
progenitor seed is derived from the upstream halo catalog
(:func:`chain_seed`), standing in for "pick a progenitor from a halo"
— so the SPH draw really depends on the structure-formation outcome,
while a fixed spec stays fully deterministic end to end.

Stage order (``PIPELINE_STAGES``):

1. ``ics`` — Zel'dovich initial conditions on an ``n_side**3`` lattice;
2. ``structure`` — PM comoving evolution to ``a_final`` (KDK in ln a);
3. ``halos`` — friends-of-friends catalog + mass-function counts;
4. ``power`` — binned P(k) of the evolved load (CIC density, FFT);
5. ``supernova`` — rotating polytrope collapse with FLD neutrinos.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from .products import HMF_BIN_EDGES

__all__ = ["Stage", "PIPELINE_STAGES", "STAGE_NAMES", "chain_seed"]


@dataclass(frozen=True)
class Stage:
    """One pipeline stage: declared inputs/outputs plus the function.

    ``run(spec, state, backend)`` must return a dict containing every
    name in ``outputs`` (the driver raises otherwise) and may read only
    ``inputs`` from ``state`` — the declarations are the dataflow
    contract that resume correctness rests on.
    """

    name: str
    inputs: tuple
    outputs: tuple
    run: Callable


def _cosmology(spec):
    from ..cosmology.background import Cosmology

    return Cosmology(
        h=spec.h, omega_m=spec.omega_m, omega_l=spec.omega_l,
        omega_b=spec.omega_b, n_s=spec.n_s, sigma8=spec.sigma8,
    )


def _stage_ics(spec, state: Mapping, backend) -> dict:
    from ..cosmology.ics import zeldovich_ics

    ics = zeldovich_ics(
        n_side=spec.n_side,
        box_mpc_h=spec.box_mpc_h,
        a_start=spec.a_start,
        cosmology=_cosmology(spec),
        seed=spec.seed,
        k_cut_fraction=spec.k_cut_fraction,
    )
    return {
        "positions": ics.positions,
        "velocities": ics.velocities,
        "a": float(ics.a_start),
        "rms_displacement": ics.rms_displacement(),
    }


def _stage_structure(spec, state: Mapping, backend) -> dict:
    from ..cosmology.ics import InitialConditions
    from ..cosmology.simulation import ComovingSimulation

    ics = InitialConditions(
        positions=np.asarray(state["positions"]),
        velocities=np.asarray(state["velocities"]),
        a_start=float(state["a"]),
        box_mpc_h=spec.box_mpc_h,
        cosmology=_cosmology(spec),
        delta_grid=np.empty(0),  # not consumed by the evolution
    )
    sim = ComovingSimulation(ics)
    sim.run_to(spec.a_final, dlna=spec.dlna)
    return {
        "positions": sim.positions,
        "velocities": sim.velocities,
        "a": float(sim.a),
        "density_rms": sim.density_rms(),
        "structure_steps": int(sim.steps_taken),
    }


def _stage_halos(spec, state: Mapping, backend) -> dict:
    from ..cosmology.fof import friends_of_friends

    fof = friends_of_friends(
        np.asarray(state["positions"]),
        linking_length=spec.linking_length,
        min_members=spec.min_members,
        backend=backend,
    )
    sizes = np.array(sorted(h.n_members for h in fof.halos), dtype=np.int64)
    counts = fof.mass_function(np.array(HMF_BIN_EDGES))
    return {
        "halo_sizes": sizes,
        "hmf_counts": counts.astype(np.int64),
        "n_halos": int(fof.n_halos),
        "largest_halo": int(sizes[-1]) if sizes.size else 0,
    }


def _stage_power(spec, state: Mapping, backend) -> dict:
    from ..cosmology.correlation import measured_power_spectrum

    # The PM/ICs lattice is commensurate with an n_side grid, so the
    # measured contrast is pure perturbation (no lattice aliasing);
    # shot noise stays in because a lattice-displaced load is not a
    # Poisson sample.
    k, pk = measured_power_spectrum(
        np.asarray(state["positions"]),
        grid=spec.n_side,
        box_mpc_h=spec.box_mpc_h,
        n_bins=spec.pk_bins,
        subtract_shot_noise=False,
        backend=backend,
    )
    return {"pk_k": np.asarray(k, dtype=np.float64),
            "pk_power": np.asarray(pk, dtype=np.float64)}


def chain_seed(seed: int, n_halos: int, largest_halo: int) -> int:
    """Progenitor seed derived from the upstream halo catalog.

    Mixes the scenario seed with the halo count and the largest halo's
    membership so the supernova draw genuinely depends on the
    structure-formation outcome, while staying deterministic for a
    fixed spec.

    >>> chain_seed(7, 0, 0) == chain_seed(7, 0, 0)
    True
    >>> chain_seed(7, 0, 0) != chain_seed(7, 24, 16)
    True
    """
    return (seed * 2654435761 + 9176 * int(n_halos) + int(largest_halo)) % (2**31)


def _stage_supernova(spec, state: Mapping, backend) -> dict:
    from ..sph.collapse import (
        CollapseConfig,
        CollapseSimulation,
        add_rotation,
        polytrope_particles,
    )

    sn_seed = chain_seed(spec.seed, state["n_halos"], state["largest_halo"])
    pos, masses, u = polytrope_particles(spec.sn_particles, spec.n_poly, seed=sn_seed)
    vel = add_rotation(pos, omega0=spec.omega0, r0=spec.r0)
    cfg = CollapseConfig(
        n_target_neighbors=spec.n_target_neighbors,
        pressure_deficit=spec.pressure_deficit,
        with_neutrinos=spec.with_neutrinos,
    )
    sim = CollapseSimulation(pos, vel, masses, u, config=cfg)
    history = sim.run(spec.sn_steps)
    return {
        "lc_times": np.asarray(history.times, dtype=np.float64),
        "lc_luminosity": np.asarray(history.neutrino_luminosity, dtype=np.float64),
        "lc_central_density": np.asarray(history.central_density, dtype=np.float64),
        "sn_seed": int(sn_seed),
        "sn_bounced": bool(history.bounced(cfg.eos.rho_nuc)),
    }


#: The chain, in execution order.  Checkpoint epoch ``i`` is "stages
#: ``0..i`` done"; the driver resumes from the newest committed epoch.
PIPELINE_STAGES = (
    Stage(
        name="ics",
        inputs=(),
        outputs=("positions", "velocities", "a", "rms_displacement"),
        run=_stage_ics,
    ),
    Stage(
        name="structure",
        inputs=("positions", "velocities", "a"),
        outputs=("positions", "velocities", "a", "density_rms", "structure_steps"),
        run=_stage_structure,
    ),
    Stage(
        name="halos",
        inputs=("positions",),
        outputs=("halo_sizes", "hmf_counts", "n_halos", "largest_halo"),
        run=_stage_halos,
    ),
    Stage(
        name="power",
        inputs=("positions",),
        outputs=("pk_k", "pk_power"),
        run=_stage_power,
    ),
    Stage(
        name="supernova",
        inputs=("n_halos", "largest_halo"),
        outputs=("lc_times", "lc_luminosity", "lc_central_density",
                 "sn_seed", "sn_bounced"),
        run=_stage_supernova,
    ),
)

STAGE_NAMES = tuple(s.name for s in PIPELINE_STAGES)
