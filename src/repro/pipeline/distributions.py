"""Parameter distributions: the sampling language of pipeline ensembles.

An ensemble is "the same scenario, many times, with parameters drawn
from user-supplied distributions" — the shape of SNTD's
``createMultiplyImagedSN`` exemplar, where each synthetic observable
is one draw from per-parameter priors.  Four kinds cover the useful
cases:

* :class:`Fixed` — every draw returns the same value (pin a knob);
* :class:`Uniform` — ``rng.uniform(low, high)``;
* :class:`Normal` — ``rng.normal(mean, sigma)``, optionally clipped to
  ``[low, high]`` so a physical bound (e.g. ``pressure_deficit <= 1``)
  can never be violated by a tail draw;
* :class:`Grid` — cycle deterministically through an explicit list
  (stratified coverage rather than random sampling).

Draws are *index-seeded*: :func:`draw_specs` gives scenario ``i`` its
own ``np.random.default_rng([seed, i])`` stream, so scenario ``i`` is
identical whether you draw 10 scenarios or 10 000 — which is what
makes a grown ensemble a superset of a smaller one, and what keeps the
campaign fingerprints of the shared prefix stable (dedupe and resume
hit across ensemble sizes).

Every distribution round-trips through plain JSON dicts
(``to_dict`` / :func:`distribution_from_dict`), mirroring
:mod:`repro.campaign.spec`.

>>> Grid(values=(1, 2, 3)).draw(None, 4)
2
>>> d = distribution_from_dict(Uniform(low=0.0, high=1.0).to_dict())
>>> d == Uniform(low=0.0, high=1.0)
True
>>> as_distribution(42)
Fixed(value=42)
>>> as_distribution([0.1, 0.2])
Grid(values=(0.1, 0.2))
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

__all__ = [
    "Distribution",
    "Fixed",
    "Uniform",
    "Normal",
    "Grid",
    "DISTRIBUTION_KINDS",
    "distribution_from_dict",
    "as_distribution",
]


@dataclass(frozen=True)
class Distribution:
    """Base parameter distribution: pure data plus one ``draw``.

    Subclasses set ``kind`` (the registry key in
    :data:`DISTRIBUTION_KINDS`) and implement :meth:`draw`.  Frozen for
    the same reason scenario specs are: a distribution that appears in
    an ensemble definition must not drift after the fact.
    """

    kind = "abstract"

    def draw(self, rng: np.random.Generator, index: int) -> Any:
        """One value for scenario ``index`` from stream ``rng``."""
        raise NotImplementedError

    def to_dict(self) -> dict:
        """JSON-ready dict carrying ``kind`` plus every parameter."""
        d = {"kind": self.kind}
        d.update(dataclasses.asdict(self))
        return d

    @classmethod
    def from_dict(cls, d: Mapping) -> "Distribution":
        params = {k: v for k, v in d.items() if k != "kind"}
        return cls(**params)


@dataclass(frozen=True)
class Fixed(Distribution):
    """Degenerate distribution: every draw is ``value``.

    >>> Fixed(value=0.3).draw(None, 7)
    0.3
    """

    kind = "fixed"

    value: Any = None

    def draw(self, rng, index):
        return self.value


@dataclass(frozen=True)
class Uniform(Distribution):
    """Uniform on ``[low, high)``.

    >>> rng = np.random.default_rng([0, 0])
    >>> 0.1 <= Uniform(low=0.1, high=0.5).draw(rng, 0) < 0.5
    True
    """

    kind = "uniform"

    low: float = 0.0
    high: float = 1.0

    def __post_init__(self):
        if not self.low < self.high:
            raise ValueError("need low < high")

    def draw(self, rng, index):
        return float(rng.uniform(self.low, self.high))


@dataclass(frozen=True)
class Normal(Distribution):
    """Gaussian ``N(mean, sigma)``, optionally clipped to ``[low, high]``.

    Clipping keeps tail draws inside a physical bound, so a spec's
    ``__post_init__`` validation can never reject a drawn scenario.

    >>> rng = np.random.default_rng([0, 0])
    >>> v = Normal(mean=0.5, sigma=10.0, low=0.0, high=1.0).draw(rng, 0)
    >>> 0.0 <= v <= 1.0
    True
    """

    kind = "normal"

    mean: float = 0.0
    sigma: float = 1.0
    low: float | None = None
    high: float | None = None

    def __post_init__(self):
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")
        if self.low is not None and self.high is not None and self.low > self.high:
            raise ValueError("need low <= high")

    def draw(self, rng, index):
        v = float(rng.normal(self.mean, self.sigma))
        if self.low is not None:
            v = max(v, self.low)
        if self.high is not None:
            v = min(v, self.high)
        return v


@dataclass(frozen=True)
class Grid(Distribution):
    """Cycle through explicit values by scenario index (no randomness).

    Scenario ``i`` gets ``values[i % len(values)]`` — stratified
    coverage that pairs naturally with a random distribution on another
    parameter.

    >>> Grid(values=("a", "b")).draw(None, 3)
    'b'
    """

    kind = "grid"

    values: tuple = ()

    def __post_init__(self):
        object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise ValueError("Grid needs at least one value")

    def draw(self, rng, index):
        return self.values[index % len(self.values)]

    @classmethod
    def from_dict(cls, d: Mapping) -> "Grid":
        return cls(values=tuple(d["values"]))


DISTRIBUTION_KINDS: dict[str, type[Distribution]] = {
    cls.kind: cls for cls in (Fixed, Uniform, Normal, Grid)
}


def distribution_from_dict(d: Mapping) -> Distribution:
    """Rebuild a distribution from its JSON dict (inverse of ``to_dict``)."""
    kind = d.get("kind")
    if kind not in DISTRIBUTION_KINDS:
        raise ValueError(
            f"unknown distribution kind {kind!r}; known: {sorted(DISTRIBUTION_KINDS)}"
        )
    return DISTRIBUTION_KINDS[kind].from_dict(d)


def as_distribution(obj) -> Distribution:
    """Coerce shorthand to a distribution.

    A :class:`Distribution` passes through; a dict is decoded; a list
    or tuple becomes a :class:`Grid`; any other scalar becomes
    :class:`Fixed`.
    """
    if isinstance(obj, Distribution):
        return obj
    if isinstance(obj, Mapping):
        return distribution_from_dict(obj)
    if isinstance(obj, (list, tuple)):
        return Grid(values=tuple(obj))
    return Fixed(value=obj)
