"""repro.pipeline — the simulator as a product, "supernovae to cosmology".

One call, :func:`run_pipeline`, chains everything the repo can do into
the paper's end-to-end story: Zel'dovich ICs → PM structure formation
→ FoF halo finding → P(k) → rotating SPH core collapse, emitting typed
observable products (halo mass function, matter power spectrum,
neutrino light curve).  One more call, :func:`run_ensemble`, scales it
to thousands of scenarios drawn from per-parameter
:mod:`~repro.pipeline.distributions`, riding the campaign engine's
worker pool, dedupe, and crash-safe resume.

Quickstart (a deliberately tiny box so the example itself is fast —
the default :class:`~repro.campaign.spec.PipelineSpec` is the
smallest halo-forming one):

>>> from repro.campaign import PipelineSpec
>>> from repro.pipeline import run_pipeline
>>> spec = PipelineSpec(n_side=4, a_final=0.2, sn_particles=16,
...                     sn_steps=2, with_neutrinos=False)
>>> products = run_pipeline(spec)
>>> sorted(products.summary())[:4]
['a_final', 'bounced', 'density_rms', 'largest_halo']
>>> len(products.light_curve.times)
2

Ensemble::

    from repro.pipeline import Uniform, run_ensemble
    ens = run_ensemble(PipelineSpec(), {"omega0": Uniform(low=0.1, high=0.5)},
                       n=100, store_dir="pipeline_out", workers=4)
    print(ens.statistics["time_to_peak"])

See ``docs/USER_GUIDE.md`` for the walkthrough and
``docs/COOKBOOK.md`` for recipes.
"""

from ..campaign.spec import PipelineSpec
from .distributions import (
    DISTRIBUTION_KINDS,
    Distribution,
    Fixed,
    Grid,
    Normal,
    Uniform,
    as_distribution,
    distribution_from_dict,
)
from .driver import (
    EnsembleResult,
    draw_specs,
    ensemble_statistics,
    run_campaign_scenario,
    run_ensemble,
    run_pipeline,
)
from .products import (
    HMF_BIN_EDGES,
    HaloMassFunction,
    LightCurve,
    MatterPowerSpectrum,
    PipelineProducts,
    summaries_of,
)
from .stages import PIPELINE_STAGES, STAGE_NAMES, Stage, chain_seed

__all__ = [
    # driver
    "run_pipeline",
    "run_campaign_scenario",
    "draw_specs",
    "run_ensemble",
    "ensemble_statistics",
    "EnsembleResult",
    # spec (registered with the campaign engine)
    "PipelineSpec",
    # stages
    "Stage",
    "PIPELINE_STAGES",
    "STAGE_NAMES",
    "chain_seed",
    # products
    "HMF_BIN_EDGES",
    "HaloMassFunction",
    "MatterPowerSpectrum",
    "LightCurve",
    "PipelineProducts",
    "summaries_of",
    # distributions
    "Distribution",
    "Fixed",
    "Uniform",
    "Normal",
    "Grid",
    "DISTRIBUTION_KINDS",
    "distribution_from_dict",
    "as_distribution",
]
