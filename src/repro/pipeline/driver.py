"""The end-to-end driver: one call from spec to observable products.

:func:`run_pipeline` chains the five stages of
:data:`repro.pipeline.stages.PIPELINE_STAGES` — cosmological ICs → PM
structure formation → FoF halos → P(k) → SPH core collapse — and
returns a :class:`repro.pipeline.products.PipelineProducts` (halo mass
function, matter power spectrum, neutrino light curve).  Around that
single-scenario call, three layers scale it to ensembles:

* :func:`draw_specs` turns a base :class:`~repro.campaign.spec.PipelineSpec`
  plus per-parameter :mod:`~repro.pipeline.distributions` into ``n``
  drawn specs (index-seeded: scenario ``i`` is stable across ensemble
  sizes);
* :func:`run_ensemble` pushes the drawn catalog through
  :func:`repro.campaign.run_campaign` — worker pool, fingerprint
  dedupe, crash-safe resume all inherited, since a pipeline scenario
  is just one more campaign spec kind;
* :func:`ensemble_statistics` reduces the per-scenario summaries to
  moments + quantiles per metric — the distributions that
  ``bench_pipeline.py`` gates against committed envelopes.

Checkpointing: pass ``checkpoint_dir`` and every completed stage
commits an epoch in the PR-1 two-phase
:class:`~repro.resilience.checkpoint.CheckpointStore` (arrays as
``.npy`` snapshots, JSON scalars in the commit metadata, the spec
fingerprint guarding against resuming someone else's state).  A rerun
resumes after the newest committed stage; a different spec in the same
directory starts from scratch.

Instrumentation: each stage is a ``pipeline.<stage>`` span on the
:mod:`repro.obs` observer, stage compute is charged to the ``kernel``
wall-clock bucket and checkpoint I/O to ``serialization``
(:mod:`repro.obs.wallclock`).

>>> from repro.campaign.spec import PipelineSpec
>>> spec = PipelineSpec(n_side=4, a_final=0.2, sn_particles=16, sn_steps=2,
...                     with_neutrinos=False)
>>> products = run_pipeline(spec)
>>> sorted(products.summary())[:4]
['a_final', 'bounced', 'density_rms', 'largest_halo']
>>> products.power_spectrum.total > 0
True
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..obs import NULL, Recorder
from ..obs import wallclock
from .distributions import as_distribution
from .products import (
    HMF_BIN_EDGES,
    HaloMassFunction,
    LightCurve,
    MatterPowerSpectrum,
    PipelineProducts,
)
from .stages import PIPELINE_STAGES, STAGE_NAMES

__all__ = [
    "run_pipeline",
    "run_campaign_scenario",
    "draw_specs",
    "run_ensemble",
    "ensemble_statistics",
    "EnsembleResult",
]


def _split_state(state: Mapping) -> tuple[dict, dict]:
    """Partition the stage state into (numpy arrays, JSON scalars)."""
    arrays = {k: v for k, v in state.items() if isinstance(v, np.ndarray)}
    scalars = {k: v for k, v in state.items() if not isinstance(v, np.ndarray)}
    return arrays, scalars


def _try_resume(ckpt, fingerprint: str) -> tuple[int, dict]:
    """Newest committed stage for this spec, plus its restored state."""
    latest = ckpt.latest_committed()
    if latest is None:
        return 0, {}
    meta = ckpt.commit_meta(latest)
    if meta.get("fingerprint") != fingerprint:
        return 0, {}  # another spec's checkpoints: ignore, start clean
    snap = ckpt.load_rank(latest, rank=0)
    state = dict(meta["scalars"])
    state.update(snap.arrays)
    return latest + 1, state


def _build_products(fingerprint: str, state: Mapping) -> PipelineProducts:
    return PipelineProducts(
        fingerprint=fingerprint,
        mass_function=HaloMassFunction(
            bin_edges=HMF_BIN_EDGES,
            counts=tuple(int(c) for c in state["hmf_counts"]),
            n_halos=int(state["n_halos"]),
            largest=int(state["largest_halo"]),
        ),
        power_spectrum=MatterPowerSpectrum(
            k=tuple(float(k) for k in state["pk_k"]),
            power=tuple(float(p) for p in state["pk_power"]),
        ),
        light_curve=LightCurve(
            times=tuple(float(t) for t in state["lc_times"]),
            luminosity=tuple(float(x) for x in state["lc_luminosity"]),
            central_density=tuple(float(x) for x in state["lc_central_density"]),
            bounced=bool(state["sn_bounced"]),
        ),
        a_final=float(state["a"]),
        density_rms=float(state["density_rms"]),
        rms_displacement=float(state["rms_displacement"]),
        structure_steps=int(state["structure_steps"]),
        sn_seed=int(state["sn_seed"]),
    )


def run_pipeline(
    spec,
    *,
    checkpoint_dir: str | None = None,
    observer: Recorder = NULL,
    backend=None,
    stop_after: str | None = None,
    trace: list | None = None,
) -> PipelineProducts | None:
    """Run (or resume) the five-stage pipeline for one scenario.

    ``spec`` is a :class:`repro.campaign.spec.PipelineSpec` (or any
    object with its fields plus ``to_dict``).  With ``checkpoint_dir``
    each completed stage commits an epoch and a rerun resumes after
    the newest one.  ``backend`` routes the FoF and P(k) kernels
    through :mod:`repro.core.backend`; ``stop_after`` halts after the
    named stage (checkpoint workflows and drills) and returns ``None``
    unless the chain completed; ``trace``, if given, collects the names
    of the stages actually executed (resumed stages are absent).
    """
    from ..campaign.fingerprint import scenario_fingerprint_hex

    if stop_after is not None and stop_after not in STAGE_NAMES:
        raise ValueError(f"unknown stage {stop_after!r}; stages: {STAGE_NAMES}")
    fingerprint = scenario_fingerprint_hex(spec.to_dict())

    ckpt = None
    start, state = 0, {}
    if checkpoint_dir is not None:
        from ..resilience.checkpoint import CheckpointStore

        ckpt = CheckpointStore(checkpoint_dir)
        start, state = _try_resume(ckpt, fingerprint)
        if start:
            observer.count("pipeline.resumed_stages", start)

    for index in range(start, len(PIPELINE_STAGES)):
        stage = PIPELINE_STAGES[index]
        t0 = observer.now()
        with wallclock.bucket("kernel"):
            out = stage.run(spec, state, backend)
        missing = set(stage.outputs) - set(out)
        if missing:
            raise RuntimeError(
                f"stage {stage.name!r} broke its contract: missing {sorted(missing)}"
            )
        state.update(out)
        observer.add_span(f"pipeline.{stage.name}", t0, observer.now(),
                          cat="pipeline", args={"stage": stage.name})
        observer.count("pipeline.stages_run")
        if trace is not None:
            trace.append(stage.name)
        if ckpt is not None:
            arrays, scalars = _split_state(state)
            with wallclock.bucket("serialization"):
                ckpt.write_rank(index, 0, arrays)
                ckpt.commit(index, {
                    "stage": stage.name,
                    "fingerprint": fingerprint,
                    "scalars": scalars,
                })
        if stage.name == stop_after:
            break

    if "sn_seed" not in state:  # stopped before the chain completed
        return None
    return _build_products(fingerprint, state)


def run_campaign_scenario(params: Mapping) -> dict:
    """Campaign entry point: one pipeline scenario → JSON result.

    The payload carries the flat ``summary`` (the unit of distribution
    validation) and the full nested ``products`` dict.
    """
    from ..campaign.spec import PipelineSpec

    products = run_pipeline(PipelineSpec(**params))
    return {"summary": products.summary(), "products": products.to_dict()}


def draw_specs(base, distributions: Mapping, n: int, *, seed: int = 0) -> list:
    """Draw ``n`` specs from per-field distributions over ``base``.

    ``distributions`` maps field names of ``base`` to
    :class:`~repro.pipeline.distributions.Distribution` values (or
    shorthand accepted by
    :func:`~repro.pipeline.distributions.as_distribution`: a scalar
    pins, a list cycles).  Draws are coerced to the field's current
    type (so a ``Uniform`` over an int field rounds), and every drawn
    spec passes its ``__post_init__`` validation.

    Index-seeded determinism: scenario ``i`` uses
    ``np.random.default_rng([seed, i])``, so it is identical whatever
    ``n`` is — growing an ensemble reuses (dedupes against) the smaller
    one's campaign results.

    >>> from repro.campaign.spec import PipelineSpec
    >>> from repro.pipeline.distributions import Uniform
    >>> base = PipelineSpec()
    >>> a = draw_specs(base, {"omega0": Uniform(low=0.1, high=0.5)}, 3, seed=1)
    >>> b = draw_specs(base, {"omega0": Uniform(low=0.1, high=0.5)}, 5, seed=1)
    >>> [s.omega0 for s in a] == [s.omega0 for s in b[:3]]
    True
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    names = {f.name for f in dataclasses.fields(base)}
    unknown = sorted(set(distributions) - names)
    if unknown:
        raise ValueError(f"unknown spec fields: {unknown}")
    dists = {name: as_distribution(d) for name, d in distributions.items()}
    specs = []
    for i in range(n):
        rng = np.random.default_rng([seed, i])
        drawn = {}
        for name in sorted(dists):
            value = dists[name].draw(rng, i)
            current = getattr(base, name)
            if isinstance(current, bool):
                value = bool(value)
            elif isinstance(current, int):
                value = int(round(float(value)))
            elif isinstance(current, float):
                value = float(value)
            drawn[name] = value
        specs.append(dataclasses.replace(base, **drawn))
    return specs


def ensemble_statistics(
    summaries: Sequence[Mapping], quantiles: Sequence[float] = (0.1, 0.5, 0.9)
) -> dict:
    """Moments + quantiles per summary metric, over an ensemble.

    Returns ``{metric: {"n", "mean", "std", "min", "max", "qXX"...}}``
    — the distribution table the pipeline bench validates against its
    committed envelopes.

    >>> stats = ensemble_statistics([{"x": 1.0}, {"x": 3.0}])
    >>> stats["x"]["mean"], stats["x"]["q50"]
    (2.0, 2.0)
    """
    keys: set = set()
    for s in summaries:
        keys.update(s)
    out: dict = {}
    for key in sorted(keys):
        vals = np.array([float(s[key]) for s in summaries if key in s])
        entry = {
            "n": int(vals.size),
            "mean": float(vals.mean()),
            "std": float(vals.std()),
            "min": float(vals.min()),
            "max": float(vals.max()),
        }
        for q in quantiles:
            entry[f"q{int(round(q * 100))}"] = float(np.quantile(vals, q))
        out[key] = entry
    return out


@dataclass
class EnsembleResult:
    """What :func:`run_ensemble` hands back, in catalog order."""

    report: object  # CampaignReport
    specs: list
    fingerprints: list
    results: list = field(default_factory=list)  # per-scenario result payloads
    statistics: dict = field(default_factory=dict)

    @property
    def summaries(self) -> list:
        return [dict(r["summary"]) for r in self.results]


def run_ensemble(
    base,
    distributions: Mapping,
    n: int,
    store_dir: str,
    *,
    seed: int = 0,
    workers: int | None = None,
    observer: Recorder = NULL,
    throttle: float = 0.0,
) -> EnsembleResult:
    """Draw ``n`` scenarios and run them as one campaign.

    One call = the whole ensemble: :func:`draw_specs` builds the
    catalog, :func:`repro.campaign.run_campaign` shards it across the
    worker pool with fingerprint dedupe and crash-safe resume, and the
    per-scenario summaries are reduced to :func:`ensemble_statistics`.
    Rerunning the same call against the same ``store_dir`` is all
    cache hits.
    """
    from ..campaign.fingerprint import scenario_fingerprint_hex
    from ..campaign.runner import run_campaign
    from ..campaign.store import ResultStore

    specs = draw_specs(base, distributions, n, seed=seed)
    report = run_campaign(specs, store_dir, workers=workers,
                          observer=observer, throttle=throttle)
    by_fp = ResultStore(store_dir).load_results()
    fingerprints = [scenario_fingerprint_hex(s.to_dict()) for s in specs]
    results = [by_fp[fp]["result"] for fp in fingerprints if fp in by_fp]
    stats = ensemble_statistics([r["summary"] for r in results])
    return EnsembleResult(report=report, specs=specs, fingerprints=fingerprints,
                          results=results, statistics=stats)
