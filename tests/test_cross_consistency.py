"""Cross-implementation consistency: every gravity path agrees.

The repository ships four ways to compute the same forces — direct
summation, the serial treecode, the SimMPI-parallel treecode, and the
out-of-core treecode — plus the micro-kernel.  These integration tests
pin them against each other on one shared problem, which is the
strongest regression net the codebase has: a bug in any shared layer
(keys, tree, multipoles, MAC, evaluation) breaks at least one pairing.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import (
    ParallelConfig,
    direct_accelerations,
    interaction_kernel,
    out_of_core_accelerations,
    parallel_tree_accelerations,
    tree_accelerations,
)
from repro.core.outofcore import OutOfCoreParticles
from repro.machine.node import DiskSpec, SPACE_SIMULATOR_NODE
from repro.resilience import ResilienceConfig
from repro.simmpi import FaultEvent, FaultPlan, UniformCost

THETA = 0.5
EPS = 0.05
N = 700


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(2003)
    r = rng.random(N) ** (1.0 / 2.0)
    d = rng.standard_normal((N, 3))
    d /= np.linalg.norm(d, axis=1, keepdims=True)
    pos = r[:, None] * d
    masses = rng.random(N) * (2.0 / N)
    return pos, masses


@pytest.fixture(scope="module")
def all_results(problem, tmp_path_factory):
    pos, masses = problem
    direct = direct_accelerations(pos, masses, eps=EPS)
    serial = tree_accelerations(pos, masses, theta=THETA, eps=EPS, bucket_size=16)
    par = parallel_tree_accelerations(
        pos, masses, n_ranks=4,
        config=ParallelConfig(theta=THETA, eps=EPS, bucket_size=16),
    )
    store = OutOfCoreParticles.create(pos, masses, str(tmp_path_factory.mktemp("ooc")))
    ooc = out_of_core_accelerations(store, theta=THETA, eps=EPS, bucket_size=16, chunk=128)
    store.cleanup()
    return {"direct": direct, "serial": serial, "parallel": par, "ooc": ooc}


def _median_rel(a, b):
    num = np.linalg.norm(a - b, axis=1)
    den = np.linalg.norm(b, axis=1) + 1e-300
    return float(np.median(num / den))


class TestAllPathsAgree:
    def test_serial_vs_direct(self, all_results):
        assert _median_rel(
            all_results["serial"].accelerations, all_results["direct"].accelerations
        ) < 1e-3

    def test_parallel_vs_direct(self, all_results):
        assert _median_rel(
            all_results["parallel"].accelerations, all_results["direct"].accelerations
        ) < 1e-3

    def test_ooc_vs_serial_identical(self, all_results):
        # Same virtual tree, same MAC, same kernels: bitwise-grade match.
        assert np.allclose(
            all_results["ooc"].accelerations,
            all_results["serial"].accelerations,
            rtol=1e-12, atol=1e-14,
        )

    def test_parallel_vs_serial(self, all_results):
        assert _median_rel(
            all_results["parallel"].accelerations, all_results["serial"].accelerations
        ) < 2e-3

    def test_potentials_consistent(self, all_results):
        ref = all_results["direct"].potentials
        for name in ("serial", "parallel", "ooc"):
            ours = all_results[name].potentials
            assert np.allclose(ours, ref, rtol=1e-2, atol=1e-8), name

    def test_momentum_conservation_everywhere(self, problem, all_results):
        _, masses = problem
        for name in ("direct", "serial", "parallel", "ooc"):
            net = (masses[:, None] * all_results[name].accelerations).sum(axis=0)
            scale = np.abs(all_results[name].accelerations).max()
            # Approximate methods conserve momentum only to MAC error.
            tol = 1e-12 if name == "direct" else 1e-2
            assert np.linalg.norm(net) < tol * scale * masses.sum() + 1e-12, name

    def test_kernel_agrees_with_direct_row(self, problem):
        # The Table 5 micro-kernel computes the same physics as one row
        # of the direct sum.
        pos, masses = problem
        sink_idx = 17
        others = np.delete(np.arange(N), sink_idx)
        acc, pot = interaction_kernel(
            pos[sink_idx], pos[others], masses[others], eps=EPS, method="karp"
        )
        ref = direct_accelerations(pos, masses, eps=EPS)
        assert np.allclose(acc, ref.accelerations[sink_idx], rtol=1e-10)
        assert pot == pytest.approx(ref.potentials[sink_idx], rel=1e-10)


@pytest.mark.slow
class TestFaultInjectedRecovery:
    """A node crash mid-run must not change the physics.

    The parallel treecode checkpoints its post-exchange particle state;
    everything downstream (tree build, traversal, force evaluation) is a
    deterministic function of that state, so a crash + restart must
    reproduce the fault-free forces *bit for bit* — not merely within
    tolerance — and therefore inherit every cross-path agreement above.
    """

    @pytest.fixture(scope="class")
    def recovered(self, problem, tmp_path_factory):
        pos, masses = problem
        cost = UniformCost(latency_s=20e-6, mbytes_s=150.0, mflops=800.0)
        config = ParallelConfig(theta=THETA, eps=EPS, bucket_size=16)
        # A fast local disk keeps the virtual dump shorter than the run,
        # so the checkpoint commits before the injected crash lands.
        fast_node = dataclasses.replace(
            SPACE_SIMULATOR_NODE,
            disk=DiskSpec(seek_ms=0.001, sustained_mbytes_s=1000.0),
        )

        free = parallel_tree_accelerations(
            pos, masses, n_ranks=4, config=config, cost=cost
        )
        crash_t = free.sim.elapsed * 0.75
        faults = FaultPlan([FaultEvent("crash", 2, crash_t)])

        def run_once(sub):
            return parallel_tree_accelerations(
                pos, masses, n_ranks=4, config=config, cost=cost,
                faults=faults,
                resilience=ResilienceConfig(
                    checkpoint_dir=str(tmp_path_factory.mktemp(sub)),
                    restart_s=60.0,
                    node=fast_node,
                ),
            )

        return free, run_once("ckpt-a"), run_once("ckpt-b")

    def test_crash_actually_happened_and_recovery_used_checkpoint(self, recovered):
        _, faulty, _ = recovered
        res = faulty.resilience
        assert res.attempts == 2
        assert [f.rank for f in res.failures] == [2]
        assert res.restored_from_epoch == 0  # resumed, not recomputed
        assert res.wall_s > res.sim.elapsed  # lost work + restart paid

    def test_recovered_forces_match_fault_free_bit_for_bit(self, recovered):
        free, faulty, _ = recovered
        assert np.array_equal(faulty.accelerations, free.accelerations)
        assert np.array_equal(faulty.potentials, free.potentials)

    def test_recovered_run_agrees_with_serial_within_mac_tolerance(
        self, problem, recovered
    ):
        pos, masses = problem
        _, faulty, _ = recovered
        serial = tree_accelerations(
            pos, masses, theta=THETA, eps=EPS, bucket_size=16
        )
        assert _median_rel(faulty.accelerations, serial.accelerations) < 2e-3

    def test_same_seedpoint_reproduces_failure_schedule_and_clocks(self, recovered):
        _, a, b = recovered
        assert [
            (f.rank, f.attempt, f.cumulative_time_s) for f in a.resilience.failures
        ] == [(f.rank, f.attempt, f.cumulative_time_s) for f in b.resilience.failures]
        assert a.resilience.wall_s == b.resilience.wall_s
        assert a.sim.clocks == b.sim.clocks
        assert np.array_equal(a.accelerations, b.accelerations)
