"""Tests for repro.stream: STREAM kernels and node model."""

import pytest

from repro.machine import NORMAL, OVERCLOCK, SLOW_CPU, SLOW_MEM, SPACE_SIMULATOR_NODE
from repro.stream import KERNELS, modeled_stream, run_stream, stream_table2_row


class TestRealKernels:
    def test_all_kernels_run_and_verify(self):
        results = run_stream(n=100_000, repeats=2)
        assert set(results) == set(KERNELS)
        for r in results.values():
            assert r.verified, r.kernel
            assert r.mbytes_s > 0
            assert r.seconds > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            run_stream(n=0)
        with pytest.raises(ValueError):
            run_stream(repeats=0)


class TestModeledStream:
    def test_normal_matches_table2(self):
        rates = modeled_stream(SPACE_SIMULATOR_NODE)
        assert rates["copy"] == pytest.approx(1203.5, rel=0.01)
        assert rates["add"] == pytest.approx(1237.2, rel=0.01)
        assert rates["triad"] == pytest.approx(1238.2, rel=0.01)

    def test_scales_with_memory_clock(self):
        slow = SPACE_SIMULATOR_NODE.with_clocks(mem_scale=0.6)
        assert modeled_stream(slow)["copy"] == pytest.approx(0.6 * 1203.5, rel=0.01)

    def test_add_triad_beat_copy_scale(self):
        rates = modeled_stream(SPACE_SIMULATOR_NODE)
        assert rates["add"] > rates["copy"]
        assert rates["triad"] > rates["scale"]


class TestTable2Row:
    def test_normal_column_exact(self):
        row = stream_table2_row(NORMAL)
        assert row["copy"] == pytest.approx(1203.5)
        assert row["triad"] == pytest.approx(1238.2)

    def test_slow_mem_column_close(self):
        # Calibration slack documented in machine.clocking (fc+fm != 1
        # residual lands on the calibration columns; add/triad carry
        # the largest residual at ~3%).
        row = stream_table2_row(SLOW_MEM)
        assert row["copy"] == pytest.approx(761.8, rel=0.035)
        assert row["add"] == pytest.approx(749.8, rel=0.035)

    def test_slow_cpu_column_close(self):
        row = stream_table2_row(SLOW_CPU)
        assert row["copy"] == pytest.approx(1143.4, rel=0.02)

    def test_overclock_prediction(self):
        # The model's genuine prediction: within 2% of every measured
        # overclock value.
        row = stream_table2_row(OVERCLOCK)
        for kernel, measured in (("copy", 1268.5), ("add", 1302.8), ("scale", 1267.0), ("triad", 1304.1)):
            assert row[kernel] == pytest.approx(measured, rel=0.02), kernel
