"""The pipeline at campaign scale: a 100+-scenario drawn ensemble
through the worker pool with dedupe, plus the SIGKILL drill.

Pipeline scenarios are just one more campaign spec kind, so they must
inherit everything the campaign engine guarantees: content-fingerprint
dedupe of repeated draws, wallclock-bounded worker-pool execution,
crash-safe resume with zero recompute after SIGKILL, and a result
store byte-identical to an uninterrupted run.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign import (
    PipelineSpec,
    run_campaign,
    save_catalog,
    scenario_fingerprint_hex,
)
from repro.campaign.runner import CHECKPOINT_SUBDIR, _load_ledger
from repro.pipeline import Grid, Uniform, draw_specs, run_ensemble
from repro.resilience.checkpoint import CheckpointStore

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")

#: Smallest legal box + tiny progenitor: ~tens of ms per scenario, so
#: a 100+-scenario campaign stays inside the default tier's budget.
FAST = PipelineSpec(n_side=4, a_final=0.2, sn_particles=16, sn_steps=2,
                    with_neutrinos=False)
DISTS = {"seed": Grid(values=tuple(range(1, 25))),
         "omega0": Uniform(low=0.1, high=0.5)}


def _subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _committed_count(ckpt: CheckpointStore) -> int:
    try:
        epoch = ckpt.latest_committed()
        if epoch is None:
            return 0
        return int(ckpt.commit_meta(epoch)["completed"])
    except (OSError, json.JSONDecodeError, KeyError):
        return 0  # coordinator mid-commit or mid-prune; poll again


@pytest.mark.slow
class TestHundredScenarioEnsemble:
    def test_ensemble_through_worker_pool_with_dedupe(self, tmp_path):
        # 96 drawn scenarios + 8 repeated draws = a 104-shard catalog
        # with exactly 96 unique fingerprints.
        drawn = draw_specs(FAST, DISTS, 96, seed=11)
        catalog = drawn + drawn[:8]
        assert len(catalog) >= 100

        report = run_campaign(catalog, str(tmp_path / "store"), workers=2)
        assert report.total_shards == len(catalog)
        assert report.unique == 96
        assert report.computed == 96
        assert report.dedupe_hits == 8
        assert report.failed == 0, report.errors

        # the same ensemble drawn again is pure cache, one call deep
        ens = run_ensemble(FAST, DISTS, 96, str(tmp_path / "store"), seed=11)
        assert ens.report.computed == 0
        assert ens.report.cache_hits == 96
        assert len(ens.results) == 96

        # every scenario produced the three product families
        for result in ens.results:
            products = result["products"]
            assert set(products) >= {"mass_function", "power_spectrum", "light_curve"}
            assert len(products["light_curve"]["times"]) == FAST.sn_steps

        # and the ensemble statistics summarize all 96 draws
        assert ens.statistics["max_density"]["n"] == 96
        assert ens.statistics["density_rms"]["std"] > 0


@pytest.mark.slow
class TestSigkillResume:
    CATALOG = draw_specs(FAST, DISTS, 16, seed=5)

    def test_killed_pipeline_campaign_resumes_without_recompute(self, tmp_path):
        catalog_path = tmp_path / "catalog.jsonl"
        save_catalog(self.CATALOG, str(catalog_path))
        crash_dir = tmp_path / "crashed"
        ckpt = CheckpointStore(str(crash_dir / CHECKPOINT_SUBDIR))

        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.campaign", "run", str(catalog_path),
             "--dir", str(crash_dir), "--workers", "2", "--throttle", "0.1"],
            env=_subprocess_env(),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.time() + 120.0
            while _committed_count(ckpt) < 3:
                assert proc.poll() is None, "campaign finished before we could kill it"
                assert time.time() < deadline, "no progress within 120 s"
                time.sleep(0.02)
            os.kill(proc.pid, signal.SIGKILL)
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL

        survivors = set(_load_ledger(ckpt))
        assert 3 <= len(survivors) < 16, "kill landed mid-campaign"

        report = run_campaign(self.CATALOG, str(crash_dir), workers=1)
        assert set(report.computed_fingerprints) & survivors == set()
        assert report.resume_hits == len(survivors)
        assert report.computed == 16 - len(survivors)
        assert report.failed == 0, report.errors
        expected = {scenario_fingerprint_hex(s) for s in self.CATALOG}
        assert set(report.computed_fingerprints) | survivors == expected

        clean_dir = tmp_path / "clean"
        clean = run_campaign(self.CATALOG, str(clean_dir), workers=1)
        assert clean.computed == 16
        assert (crash_dir / "results.jsonl").read_bytes() == \
            (clean_dir / "results.jsonl").read_bytes()
