"""Tests for cosmology background, power spectrum, and ICs."""

import numpy as np
import pytest

from repro.cosmology import (
    EDS,
    LCDM,
    Cosmology,
    PowerSpectrum,
    bbks_transfer,
    gaussian_field,
    tophat_window,
    zeldovich_ics,
)


class TestBackground:
    def test_eds_growth_is_scale_factor(self):
        for a in (0.1, 0.3, 0.7, 1.0):
            assert EDS.growth_factor(a) == pytest.approx(a, rel=1e-4)

    def test_lcdm_growth_suppressed(self):
        # Lambda suppresses late growth: D(a) > a for a < 1.
        assert LCDM.growth_factor(0.5) > 0.5
        assert LCDM.growth_factor(1.0) == pytest.approx(1.0)

    def test_age_of_universe(self):
        # Concordance LCDM: ~13.5 Gyr.
        assert LCDM.age_gyr() == pytest.approx(13.5, abs=0.2)

    def test_lookback_to_z03_matches_figure7(self):
        # Fig 7: z = 0.3 is "3.5 billion years prior to the present".
        assert LCDM.lookback_gyr(0.3) == pytest.approx(3.5, abs=0.15)

    def test_eds_age(self):
        # EdS: t0 = (2/3)/H0.
        assert EDS.age_gyr() == pytest.approx(2.0 / 3.0 * EDS.hubble_time_gyr(), rel=1e-3)

    def test_hubble_rate_limits(self):
        assert LCDM.e_of_a(1.0) == pytest.approx(1.0)
        assert LCDM.e_of_a(0.1) == pytest.approx(np.sqrt(0.3 / 1e-3 + 0.7), rel=1e-9)

    def test_omega_m_evolution(self):
        # Matter dominates early.
        assert LCDM.omega_m_of_a(0.05) > 0.99
        assert LCDM.omega_m_of_a(1.0) == pytest.approx(0.3)

    def test_growth_rate_approximation(self):
        assert EDS.growth_rate(0.5) == pytest.approx(1.0)
        assert 0.4 < LCDM.growth_rate(1.0) < 0.6

    def test_validation(self):
        with pytest.raises(ValueError):
            Cosmology(omega_m=0.3, omega_l=0.5)
        with pytest.raises(ValueError):
            Cosmology(h=-1.0)
        with pytest.raises(ValueError):
            LCDM.growth_factor(0.0)
        with pytest.raises(ValueError):
            LCDM.lookback_gyr(-1.0)


class TestPowerSpectrum:
    def test_sigma8_normalization(self):
        ps = PowerSpectrum(LCDM)
        assert np.sqrt(ps.sigma_r(8.0)) == pytest.approx(LCDM.sigma8, rel=1e-3)

    def test_transfer_limits(self):
        # T -> 1 at large scales, falls steeply at small scales.
        t = bbks_transfer(np.array([1e-5, 10.0]), gamma=0.2)
        assert t[0] == pytest.approx(1.0, rel=1e-3)
        assert t[1] < 1e-3

    def test_transfer_monotone(self):
        k = np.logspace(-4, 2, 200)
        t = bbks_transfer(k, 0.2)
        assert np.all(np.diff(t) < 0)

    def test_spectrum_grows_with_a(self):
        ps = PowerSpectrum(LCDM)
        k = np.array([0.1])
        assert ps(k, a=1.0)[0] > ps(k, a=0.5)[0]

    def test_spectrum_turnover(self):
        # P(k) rises as k^ns at large scale and falls past the peak.
        ps = PowerSpectrum(LCDM)
        k = np.array([1e-4, 2e-2, 10.0])
        p = ps(k)
        assert p[1] > p[0] and p[1] > p[2]

    def test_variance_decreases_with_radius(self):
        ps = PowerSpectrum(LCDM)
        assert ps.sigma_r(4.0) > ps.sigma_r(8.0) > ps.sigma_r(16.0)

    def test_window_limits(self):
        assert tophat_window(np.array([0.0]))[0] == pytest.approx(1.0)
        assert abs(tophat_window(np.array([50.0]))[0]) < 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            bbks_transfer(np.array([-1.0]), 0.2)
        with pytest.raises(ValueError):
            bbks_transfer(np.array([1.0]), 0.0)
        with pytest.raises(ValueError):
            PowerSpectrum(LCDM).sigma_r(0.0)


class TestInitialConditions:
    def test_shapes_and_bounds(self):
        ics = zeldovich_ics(n_side=8, seed=1)
        assert ics.positions.shape == (512, 3)
        assert ics.velocities.shape == (512, 3)
        assert np.all((ics.positions >= 0) & (ics.positions < 1))

    def test_displacement_grows_with_a_start(self):
        early = zeldovich_ics(n_side=8, a_start=0.02, seed=2)
        late = zeldovich_ics(n_side=8, a_start=0.2, seed=2)
        assert late.rms_displacement() > early.rms_displacement()

    def test_mean_field_zero(self):
        ics = zeldovich_ics(n_side=12, seed=3)
        assert abs(ics.delta_grid.mean()) < 1e-10

    def test_field_amplitude_tracks_power(self):
        # Deeper sigma8 -> proportionally larger field rms.
        lo = Cosmology(sigma8=0.5)
        hi = Cosmology(sigma8=1.0)
        f_lo, _ = gaussian_field(16, 125.0, PowerSpectrum(lo), 1.0, seed=4)
        f_hi, _ = gaussian_field(16, 125.0, PowerSpectrum(hi), 1.0, seed=4)
        ratio = f_hi.std() / f_lo.std()
        assert ratio == pytest.approx(2.0, rel=1e-6)

    def test_seed_reproducibility(self):
        a = zeldovich_ics(n_side=8, seed=5)
        b = zeldovich_ics(n_side=8, seed=5)
        assert np.array_equal(a.positions, b.positions)
        c = zeldovich_ics(n_side=8, seed=6)
        assert not np.array_equal(a.positions, c.positions)

    def test_k_cut_removes_small_scale_power(self):
        full = zeldovich_ics(n_side=16, seed=7, k_cut_fraction=1.0)
        cut = zeldovich_ics(n_side=16, seed=7, k_cut_fraction=0.4)
        assert cut.delta_grid.std() < full.delta_grid.std()

    def test_validation(self):
        with pytest.raises(ValueError):
            zeldovich_ics(n_side=1)
        with pytest.raises(ValueError):
            zeldovich_ics(a_start=1.5)
        with pytest.raises(ValueError):
            zeldovich_ics(k_cut_fraction=0.0)
