"""Tests for repro.simmpi: MPI semantics and virtual-time accounting."""

import numpy as np
import pytest

from repro.simmpi import (
    ANY_SOURCE,
    MAX,
    Comm,
    DeadlockError,
    CollectiveMismatchError,
    UniformCost,
    ZeroCost,
    payload_nbytes,
    run,
)


class TestPointToPoint:
    def test_simple_send_recv(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send({"a": 7}, dest=1, tag=11)
                return None
            data = yield comm.recv(source=0, tag=11)
            return data

        result = run(prog, 2)
        assert result.returns[1] == {"a": 7}

    def test_numpy_payload(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(np.arange(5.0), dest=1)
                return None
            data = yield comm.recv(source=0)
            return float(data.sum())

        assert run(prog, 2).returns[1] == 10.0

    def test_ring_exchange(self):
        def prog(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            yield comm.isend(comm.rank, dest=right, tag=5)
            value = yield comm.recv(source=left, tag=5)
            return value

        result = run(prog, 6)
        assert result.returns == [5, 0, 1, 2, 3, 4]

    def test_message_order_preserved_same_pair(self):
        def prog(comm):
            if comm.rank == 0:
                for i in range(5):
                    yield comm.send(i, dest=1, tag=0)
                return None
            got = []
            for _ in range(5):
                got.append((yield comm.recv(source=0, tag=0)))
            return got

        assert run(prog, 2).returns[1] == [0, 1, 2, 3, 4]

    def test_tag_selectivity(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send("first", dest=1, tag=1)
                yield comm.send("second", dest=1, tag=2)
                return None
            b = yield comm.recv(source=0, tag=2)
            a = yield comm.recv(source=0, tag=1)
            return (a, b)

        assert run(prog, 2).returns[1] == ("first", "second")

    def test_any_source_wildcard(self):
        def prog(comm):
            if comm.rank == 0:
                got = []
                for _ in range(comm.size - 1):
                    got.append((yield comm.recv(source=ANY_SOURCE)))
                return sorted(got)
            yield comm.send(comm.rank, dest=0)
            return None

        assert run(prog, 4).returns[0] == [1, 2, 3]

    def test_nonblocking_wait(self):
        def prog(comm):
            if comm.rank == 0:
                req = yield comm.isend(np.ones(3), dest=1)
                yield comm.wait(req)
                return None
            req = yield comm.irecv(source=0)
            data = yield comm.wait(req)
            return float(data.sum())

        assert run(prog, 2).returns[1] == 3.0

    def test_waitall_returns_in_request_order(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send("x", dest=1, tag=1)
                yield comm.send("y", dest=1, tag=2)
                return None
            r2 = yield comm.irecv(source=0, tag=2)
            r1 = yield comm.irecv(source=0, tag=1)
            values = yield comm.waitall([r1, r2])
            return values

        assert run(prog, 2).returns[1] == ["x", "y"]

    def test_probe_sees_pending_message(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(b"data", dest=1, tag=9)
                yield comm.barrier()
                return None
            yield comm.barrier()
            info = yield comm.probe()
            yield comm.recv(source=0, tag=9)
            return info

        src, tag, nbytes = run(prog, 2).returns[1]
        assert (src, tag, nbytes) == (0, 9, 4)

    def test_probe_empty_returns_none(self):
        def prog(comm):
            info = yield comm.probe()
            return info

        assert run(prog, 1).returns[0] is None

    def test_invalid_peer_rejected(self):
        comm = Comm(rank=0, size=2)
        with pytest.raises(ValueError):
            comm.send(1, dest=2)
        with pytest.raises(ValueError):
            comm.recv(source=5)


class TestCollectives:
    def test_barrier_synchronizes_clocks(self):
        def prog(comm):
            yield comm.elapse(float(comm.rank))
            yield comm.barrier()
            t = yield comm.now()
            return t

        result = run(prog, 4)
        # Everyone leaves the barrier at the latest arrival time.
        assert all(t == pytest.approx(3.0) for t in result.returns)

    def test_bcast(self):
        def prog(comm):
            data = yield comm.bcast({"k": [1, 2]} if comm.rank == 1 else None, root=1)
            return data

        result = run(prog, 3)
        assert all(r == {"k": [1, 2]} for r in result.returns)

    def test_reduce_sum_to_root(self):
        def prog(comm):
            total = yield comm.reduce(comm.rank + 1, root=0)
            return total

        result = run(prog, 4)
        assert result.returns[0] == 10
        assert result.returns[1] is None

    def test_allreduce_max(self):
        def prog(comm):
            value = yield comm.allreduce(comm.rank * 2, op=MAX)
            return value

        assert run(prog, 5).returns == [8] * 5

    def test_allreduce_numpy_elementwise(self):
        def prog(comm):
            arr = np.full(3, float(comm.rank))
            out = yield comm.allreduce(arr)
            return out.tolist()

        assert run(prog, 3).returns[0] == [3.0, 3.0, 3.0]

    def test_gather(self):
        def prog(comm):
            data = yield comm.gather(comm.rank**2, root=2)
            return data

        result = run(prog, 3)
        assert result.returns[2] == [0, 1, 4]
        assert result.returns[0] is None

    def test_allgather(self):
        def prog(comm):
            data = yield comm.allgather(chr(ord("a") + comm.rank))
            return "".join(data)

        assert run(prog, 4).returns == ["abcd"] * 4

    def test_scatter(self):
        def prog(comm):
            items = [i * 10 for i in range(comm.size)] if comm.rank == 0 else None
            mine = yield comm.scatter(items, root=0)
            return mine

        assert run(prog, 4).returns == [0, 10, 20, 30]

    def test_scatter_requires_full_list_at_root(self):
        comm = Comm(rank=0, size=3)
        with pytest.raises(ValueError):
            comm.scatter([1, 2], root=0)

    def test_alltoall(self):
        def prog(comm):
            out = [(comm.rank, dst) for dst in range(comm.size)]
            got = yield comm.alltoall(out)
            return got

        result = run(prog, 3)
        assert result.returns[1] == [(0, 1), (1, 1), (2, 1)]

    def test_collective_kind_mismatch_detected(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.barrier()
            else:
                yield comm.allreduce(1)

        with pytest.raises(CollectiveMismatchError):
            run(prog, 2)


class TestErrors:
    def test_deadlock_detected(self):
        def prog(comm):
            # Everyone receives, nobody sends.
            yield comm.recv(source=(comm.rank + 1) % comm.size)

        with pytest.raises(DeadlockError, match="rank 0"):
            run(prog, 2)

    def test_non_generator_program_rejected(self):
        def not_a_generator(comm):
            return 42

        with pytest.raises(TypeError, match="generator"):
            run(not_a_generator, 2)

    def test_yield_garbage_raises_into_program(self):
        def prog(comm):
            with pytest.raises(TypeError):
                yield "not an op"
            return "survived"

        assert run(prog, 1).returns == ["survived"]

    def test_spmd_requires_ranks(self):
        def prog(comm):
            yield comm.barrier()

        with pytest.raises(ValueError):
            run(prog)


class TestVirtualTime:
    def test_compute_advances_clock(self):
        cost = UniformCost(mflops=1000.0)

        def prog(comm):
            yield comm.compute(flops=2e9)
            t = yield comm.now()
            return t

        assert run(prog, 1, cost).returns[0] == pytest.approx(2.0)

    def test_message_time_latency_plus_bandwidth(self):
        cost = UniformCost(latency_s=1e-3, mbytes_s=10.0)

        def prog(comm):
            if comm.rank == 0:
                yield comm.send(np.zeros(1_250_000), dest=1)  # 10 MB
                return None
            yield comm.recv(source=0)
            t = yield comm.now()
            return t

        # 1 ms latency + 10 MB / 10 MB/s = 1.001 s at the receiver.
        assert run(prog, 2, cost).returns[1] == pytest.approx(1.001, rel=1e-3)

    def test_eager_send_completes_locally(self):
        cost = UniformCost(latency_s=1e-3, mbytes_s=10.0)

        def prog(comm):
            if comm.rank == 0:
                yield comm.send(b"small", dest=1)
                t = yield comm.now()
                yield comm.barrier()
                return t
            yield comm.elapse(5.0)  # receiver shows up late
            yield comm.recv(source=0)
            yield comm.barrier()
            return None

        # The eager sender must not wait 5 s for the receiver.
        assert run(prog, 2, cost).returns[0] < 1.0

    def test_rendezvous_send_blocks_for_receiver(self):
        cost = UniformCost(latency_s=1e-3, mbytes_s=100.0)

        def prog(comm):
            if comm.rank == 0:
                yield comm.send(np.zeros(200_000), dest=1)  # 1.6 MB > eager
                t = yield comm.now()
                return t
            yield comm.elapse(5.0)
            yield comm.recv(source=0)
            return None

        assert run(prog, 2, cost).returns[0] >= 5.0

    def test_blocked_time_accounted(self):
        cost = UniformCost(latency_s=0.0, mbytes_s=1000.0)

        def prog(comm):
            if comm.rank == 0:
                yield comm.elapse(2.0)
                yield comm.send(b"x", dest=1)
                return None
            yield comm.recv(source=0)

        result = run(prog, 2, cost)
        assert result.stats[1].blocked_s == pytest.approx(2.0, abs=1e-6)

    def test_parallel_efficiency_of_embarrassing_work(self):
        def prog(comm):
            yield comm.compute(flops=1e9)

        result = run(prog, 4, UniformCost())
        assert result.parallel_efficiency() == pytest.approx(1.0)

    def test_determinism(self):
        def prog(comm):
            rng = np.random.default_rng(comm.rank)
            total = 0.0
            for i in range(5):
                partner = int(rng.integers(0, comm.size))
                yield comm.isend(float(comm.rank + i), dest=partner, tag=i)
            yield comm.barrier()
            while True:
                info = yield comm.probe()
                if info is None:
                    break
                total += yield comm.recv(source=info[0], tag=info[1])
            value = yield comm.allreduce(total)
            return value

        a = run(prog, 8, UniformCost())
        b = run(prog, 8, UniformCost())
        assert a.returns == b.returns
        assert a.clocks == b.clocks


class TestPayloadNbytes:
    def test_numpy(self):
        assert payload_nbytes(np.zeros(10)) == 80

    def test_scalars_and_none(self):
        assert payload_nbytes(None) == 0
        assert payload_nbytes(3) == 8
        assert payload_nbytes(2.5) == 8

    def test_containers(self):
        assert payload_nbytes([np.zeros(2), np.zeros(3)]) == 16 + 24 + 16

    def test_bytes_and_str(self):
        assert payload_nbytes(b"abcd") == 4
        assert payload_nbytes("abcd") == 4

    def test_opaque_object(self):
        class Thing:
            pass

        assert payload_nbytes(Thing()) == 64
