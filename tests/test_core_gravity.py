"""Tests for repro.core.gravity and traversal: force correctness."""

import numpy as np
import pytest

from repro.core import (
    AbsoluteErrorMAC,
    OpeningAngleMAC,
    direct_accelerations,
    total_energy,
    tree_accelerations,
)


def _plummer(n, seed=0):
    """Plummer-sphere positions and equal masses (standard test model)."""
    rng = np.random.default_rng(seed)
    u = rng.random(n)
    r = 1.0 / np.sqrt(u ** (-2.0 / 3.0) - 1.0)
    r = np.clip(r, None, 10.0)
    direction = rng.standard_normal((n, 3))
    direction /= np.linalg.norm(direction, axis=1, keepdims=True)
    return r[:, None] * direction, np.full(n, 1.0 / n)


class TestDirect:
    def test_two_body_force(self):
        pos = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        m = np.array([1.0, 2.0])
        res = direct_accelerations(pos, m, G=1.0)
        # a0 = G m1 / r^2 toward +x; a1 = G m0 / r^2 toward -x.
        assert np.allclose(res.accelerations[0], [2.0, 0.0, 0.0])
        assert np.allclose(res.accelerations[1], [-1.0, 0.0, 0.0])

    def test_two_body_potential(self):
        pos = np.array([[0.0, 0.0, 0.0], [2.0, 0.0, 0.0]])
        m = np.array([3.0, 5.0])
        res = direct_accelerations(pos, m)
        assert res.potentials[0] == pytest.approx(-5.0 / 2.0)
        assert res.potentials[1] == pytest.approx(-3.0 / 2.0)
        assert res.potential_energy(m) == pytest.approx(-3.0 * 5.0 / 2.0)

    def test_momentum_conservation(self):
        pos, m = _plummer(200, seed=1)
        res = direct_accelerations(pos, m, eps=0.01)
        net = (m[:, None] * res.accelerations).sum(axis=0)
        assert np.allclose(net, 0.0, atol=1e-12)

    def test_softening_caps_close_forces(self):
        pos = np.array([[0.0, 0.0, 0.0], [1e-8, 0.0, 0.0]])
        m = np.ones(2)
        res = direct_accelerations(pos, m, eps=0.1)
        assert np.abs(res.accelerations).max() < 1.0 / 0.1**2

    def test_blocked_equals_unblocked(self):
        pos, m = _plummer(150, seed=2)
        a = direct_accelerations(pos, m, eps=0.01, block=7)
        b = direct_accelerations(pos, m, eps=0.01, block=1024)
        assert np.allclose(a.accelerations, b.accelerations)
        assert np.allclose(a.potentials, b.potentials)

    def test_coincident_particles_no_nan(self):
        pos = np.zeros((3, 3))
        res = direct_accelerations(pos, np.ones(3), eps=0.0)
        assert np.isfinite(res.accelerations).all()
        assert np.allclose(res.accelerations, 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            direct_accelerations(np.zeros((2, 2)), np.ones(2))
        with pytest.raises(ValueError):
            direct_accelerations(np.zeros((2, 3)), np.ones(3))
        with pytest.raises(ValueError):
            direct_accelerations(np.zeros((2, 3)), np.ones(2), eps=-1.0)


class TestTreeAccuracy:
    def test_converges_to_direct_as_theta_shrinks(self):
        pos, m = _plummer(400, seed=3)
        exact = direct_accelerations(pos, m, eps=0.05)
        errs = []
        for theta in (1.0, 0.6, 0.3):
            approx = tree_accelerations(pos, m, theta=theta, eps=0.05)
            num = np.linalg.norm(approx.accelerations - exact.accelerations, axis=1)
            den = np.linalg.norm(exact.accelerations, axis=1)
            errs.append(float(np.median(num / den)))
        assert errs[0] > errs[1] > errs[2]
        assert errs[2] < 2e-4

    def test_typical_theta_accuracy(self):
        # theta=0.6 with quadrupoles should give ~1e-4 median relative
        # error — the "force errors are exceeded by time integration
        # error" regime the paper describes.
        pos, m = _plummer(600, seed=4)
        exact = direct_accelerations(pos, m, eps=0.05)
        approx = tree_accelerations(pos, m, theta=0.6, eps=0.05)
        num = np.linalg.norm(approx.accelerations - exact.accelerations, axis=1)
        den = np.linalg.norm(exact.accelerations, axis=1)
        assert np.median(num / den) < 1e-3

    def test_tiny_system_exact(self):
        # With everything in one leaf the treecode IS direct summation.
        pos, m = _plummer(20, seed=5)
        exact = direct_accelerations(pos, m, eps=0.01)
        approx = tree_accelerations(pos, m, theta=0.5, eps=0.01, bucket_size=32)
        assert np.allclose(approx.accelerations, exact.accelerations)
        assert np.allclose(approx.potentials, exact.potentials)

    def test_potential_matches_direct(self):
        pos, m = _plummer(300, seed=6)
        exact = direct_accelerations(pos, m, eps=0.05)
        approx = tree_accelerations(pos, m, theta=0.4, eps=0.05)
        assert np.allclose(approx.potentials, exact.potentials, rtol=2e-3, atol=1e-6)

    def test_interaction_counts_scale_sub_quadratically(self):
        # The O(N log N) claim: the interaction fraction of the full
        # N^2 must fall as N grows, and be far below 1 at modest N.
        rng = np.random.default_rng(7)
        fractions = []
        for n in (1000, 4000):
            pos = rng.random((n, 3))
            m = np.full(n, 1.0 / n)
            res = tree_accelerations(pos, m, theta=0.7, eps=0.01, bucket_size=16)
            total = res.counts.p2p + res.counts.p2c
            fractions.append(total / (n * (n - 1)))
            assert res.counts.flops > 0
        assert fractions[1] < 0.5 * fractions[0]
        assert fractions[1] < 0.15

    def test_absolute_error_mac(self):
        pos, m = _plummer(300, seed=8)
        exact = direct_accelerations(pos, m, eps=0.05)
        budget = 1e-3 * np.linalg.norm(exact.accelerations, axis=1).mean()
        approx = tree_accelerations(pos, m, eps=0.05, mac=AbsoluteErrorMAC(budget))
        err = np.linalg.norm(approx.accelerations - exact.accelerations, axis=1)
        assert err.max() < 10 * budget  # bound is conservative

    def test_bucket_size_does_not_change_physics(self):
        pos, m = _plummer(250, seed=9)
        a = tree_accelerations(pos, m, theta=0.4, eps=0.05, bucket_size=8)
        b = tree_accelerations(pos, m, theta=0.4, eps=0.05, bucket_size=64)
        rel = np.linalg.norm(a.accelerations - b.accelerations, axis=1) / (
            np.linalg.norm(b.accelerations, axis=1) + 1e-30
        )
        assert np.median(rel) < 1e-3

    def test_results_in_input_order(self):
        # Shuffling the input must shuffle the output identically.
        pos, m = _plummer(200, seed=10)
        res = tree_accelerations(pos, m, theta=0.5, eps=0.05)
        perm = np.random.default_rng(0).permutation(200)
        res_p = tree_accelerations(pos[perm], m[perm], theta=0.5, eps=0.05)
        assert np.allclose(res_p.accelerations, res.accelerations[perm])

    def test_mac_validation(self):
        with pytest.raises(ValueError):
            OpeningAngleMAC(theta=0.0)
        with pytest.raises(ValueError):
            AbsoluteErrorMAC(max_error=0.0)


class TestEnergy:
    def test_total_energy_components(self):
        pos = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        vel = np.array([[0.0, 0.5, 0.0], [0.0, -0.5, 0.0]])
        m = np.ones(2)
        ke, pe, te = total_energy(pos, vel, m)
        assert ke == pytest.approx(0.25)
        assert pe == pytest.approx(-1.0)
        assert te == pytest.approx(-0.75)
