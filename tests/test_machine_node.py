"""Tests for repro.machine.node: node hardware specifications."""

import pytest

from repro.machine import LOKI_NODE, SPACE_SIMULATOR_NODE, DiskSpec, NicSpec, NodeSpec


class TestNodeSpec:
    def test_space_simulator_peak_matches_paper(self):
        # Table 1: 5.06 Gflop/s peak per node.
        assert SPACE_SIMULATOR_NODE.peak_gflops == pytest.approx(5.06, rel=1e-3)

    def test_loki_peak_matches_paper(self):
        # Table 7: 200 Mflop/s peak per node.
        assert LOKI_NODE.peak_mflops == pytest.approx(200.0)

    def test_stream_bandwidth_calibration(self):
        # Table 2 "normal" STREAM copy: 1203.5 Mbyte/s; the calibrated
        # efficiency should land within a percent.
        assert SPACE_SIMULATOR_NODE.stream_mbytes_s == pytest.approx(1204, rel=0.01)

    def test_with_clocks_scales_cpu_only(self):
        slow = SPACE_SIMULATOR_NODE.with_clocks(cpu_scale=0.75)
        assert slow.cpu_mhz == pytest.approx(2530 * 0.75)
        assert slow.mem_mhz == SPACE_SIMULATOR_NODE.mem_mhz
        assert slow.peak_mflops == pytest.approx(SPACE_SIMULATOR_NODE.peak_mflops * 0.75)

    def test_with_clocks_scales_memory_only(self):
        slow = SPACE_SIMULATOR_NODE.with_clocks(mem_scale=0.6)
        assert slow.stream_mbytes_s == pytest.approx(SPACE_SIMULATOR_NODE.stream_mbytes_s * 0.6)
        assert slow.cpu_mhz == SPACE_SIMULATOR_NODE.cpu_mhz

    def test_with_clocks_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            SPACE_SIMULATOR_NODE.with_clocks(cpu_scale=0.0)
        with pytest.raises(ValueError):
            SPACE_SIMULATOR_NODE.with_clocks(mem_scale=-1.0)

    def test_vga_disable_buys_ten_percent_bandwidth(self):
        # Section 3.2: disabling the on-board VGA raises memory copy
        # bandwidth by 10% (at the cost of needing an AGP card to boot).
        tweaked = SPACE_SIMULATOR_NODE.without_onboard_vga()
        assert tweaked.stream_mbytes_s == pytest.approx(
            1.10 * SPACE_SIMULATOR_NODE.stream_mbytes_s
        )
        assert tweaked.peak_mflops == SPACE_SIMULATOR_NODE.peak_mflops

    def test_original_is_immutable(self):
        before = SPACE_SIMULATOR_NODE.cpu_mhz
        SPACE_SIMULATOR_NODE.with_clocks(cpu_scale=2.0)
        assert SPACE_SIMULATOR_NODE.cpu_mhz == before

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            NodeSpec(cpu_mhz=-1.0)
        with pytest.raises(ValueError):
            NodeSpec(mem_efficiency=0.0)
        with pytest.raises(ValueError):
            NodeSpec(mem_efficiency=1.5)


class TestDiskSpec:
    def test_read_time_includes_seek(self):
        disk = DiskSpec(sustained_mbytes_s=50.0, seek_ms=10.0)
        assert disk.read_time_s(0.0) == pytest.approx(0.010)
        assert disk.read_time_s(500.0) == pytest.approx(0.010 + 10.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            DiskSpec().read_time_s(-1.0)

    def test_cosmology_io_rate(self):
        # Section 4.3: peak parallel I/O near 7 Gbyte/s over 250 disks
        # implies ~28 Mbyte/s per local disk.
        assert 250 * DiskSpec().sustained_mbytes_s == pytest.approx(7000, rel=0.01)


class TestNicSpec:
    def test_effective_is_min_of_wire_and_pci(self):
        nic = NicSpec(wire_mbits_s=1000.0, pci_mbits_s=800.0)
        assert nic.effective_mbits_s == 800.0
        nic = NicSpec(wire_mbits_s=100.0, pci_mbits_s=1014.0)
        assert nic.effective_mbits_s == 100.0
