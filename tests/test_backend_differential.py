"""Differential-physics suite pinning the kernel backends.

Every registered backend is held to the same physics: accelerations
within tight 99th-percentile bounds of direct summation across a MAC
theta sweep on Plummer and uniform-box distributions, interaction
counts identical across backends (they are a property of the traversal,
never of the kernel), and the batched evaluation path within 1e-10 of
the historical one-group-at-a-time walker with bit-identical counts.

Deliberately numpy+pytest only (no hypothesis) so the suite also runs
inside the CI perf-gate job.
"""

import numpy as np
import pytest

from repro.core import (
    AbsoluteErrorMAC,
    OpeningAngleMAC,
    available_backends,
    build_tree,
    compute_forces,
    compute_forces_reference,
    direct_accelerations,
    get_backend,
    tree_accelerations,
)
from repro.core.traversal import build_interaction_lists, evaluate_interaction_lists

BACKENDS = available_backends()

#: 99th-percentile relative acceleration error allowed per opening
#: angle (generous multiples of measured behaviour, tight enough to
#: catch any kernel arithmetic slip).
P99_BOUNDS = {0.3: 2e-4, 0.5: 1e-3, 0.7: 5e-3}


def _plummer(n, seed=0):
    rng = np.random.default_rng(seed)
    u = rng.random(n)
    r = 1.0 / np.sqrt(u ** (-2.0 / 3.0) - 1.0)
    r = np.clip(r, None, 10.0)
    d = rng.standard_normal((n, 3))
    d /= np.linalg.norm(d, axis=1, keepdims=True)
    return r[:, None] * d, np.full(n, 1.0 / n)


def _uniform_box(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random((n, 3)), rng.uniform(0.5, 1.5, n) / n


DISTRIBUTIONS = {"plummer": _plummer, "uniform": _uniform_box}


def _p99_rel_err(approx, exact):
    scale = np.linalg.norm(exact, axis=1)
    err = np.linalg.norm(approx - exact, axis=1) / np.maximum(scale, 1e-300)
    return float(np.percentile(err, 99))


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("dist", sorted(DISTRIBUTIONS))
@pytest.mark.parametrize("theta", sorted(P99_BOUNDS))
def test_backend_vs_direct(backend, dist, theta):
    pos, m = DISTRIBUTIONS[dist](600, seed=11)
    exact = direct_accelerations(pos, m, eps=0.01)
    tree = build_tree(pos, m, bucket_size=16)
    res = compute_forces(tree, mac=OpeningAngleMAC(theta), eps=0.01, backend=backend)
    assert np.all(np.isfinite(res.accelerations))
    assert _p99_rel_err(res.accelerations, exact.accelerations) < P99_BOUNDS[theta]


@pytest.mark.parametrize("dist", sorted(DISTRIBUTIONS))
@pytest.mark.parametrize("theta", sorted(P99_BOUNDS))
def test_backends_agree_exactly_on_counts(dist, theta):
    pos, m = DISTRIBUTIONS[dist](400, seed=5)
    tree = build_tree(pos, m, bucket_size=16)
    results = {
        b: compute_forces(tree, mac=OpeningAngleMAC(theta), eps=0.02, backend=b)
        for b in BACKENDS
    }
    ref = results[BACKENDS[0]]
    for b, res in results.items():
        assert res.counts == ref.counts, b
        # Backends share physics to near machine precision even though
        # their summation orders differ.
        assert np.allclose(res.accelerations, ref.accelerations, rtol=1e-12, atol=1e-12), b
        assert np.allclose(res.potentials, ref.potentials, rtol=1e-12, atol=1e-12), b


class TestBatchedVsReferenceWalker:
    """The acceptance pin: batched == historical walker to 1e-10."""

    @pytest.mark.parametrize("theta", [0.3, 0.5, 0.7])
    @pytest.mark.parametrize("dist", sorted(DISTRIBUTIONS))
    def test_accelerations_and_counts(self, theta, dist):
        pos, m = DISTRIBUTIONS[dist](500, seed=3)
        tree = build_tree(pos, m, bucket_size=16)
        mac = OpeningAngleMAC(theta)
        batched = compute_forces(tree, mac=mac, eps=0.01)
        walker = compute_forces_reference(tree, mac=mac, eps=0.01)
        assert batched.counts == walker.counts
        assert np.max(np.abs(batched.accelerations - walker.accelerations)) < 1e-10
        assert np.max(np.abs(batched.potentials - walker.potentials)) < 1e-10

    def test_absolute_error_mac(self):
        pos, m = _plummer(400, seed=9)
        tree = build_tree(pos, m, bucket_size=16)
        mac = AbsoluteErrorMAC(1e-4)
        batched = compute_forces(tree, mac=mac, eps=0.01)
        walker = compute_forces_reference(tree, mac=mac, eps=0.01)
        assert batched.counts == walker.counts
        assert np.max(np.abs(batched.accelerations - walker.accelerations)) < 1e-10

    def test_unsoftened_and_nonunit_G(self):
        pos, m = _uniform_box(300, seed=17)
        tree = build_tree(pos, m, bucket_size=8)
        batched = compute_forces(tree, eps=0.0, G=2.5)
        walker = compute_forces_reference(tree, eps=0.0, G=2.5)
        assert batched.counts == walker.counts
        assert np.max(np.abs(batched.accelerations - walker.accelerations)) < 1e-10

    @pytest.mark.parametrize("pair_chunk", [1, 17, 4096, 1 << 20])
    def test_pair_chunk_invariance(self, pair_chunk):
        pos, m = _plummer(300, seed=21)
        tree = build_tree(pos, m, bucket_size=16)
        base = compute_forces(tree, eps=0.01)
        chunked = compute_forces(tree, eps=0.01, pair_chunk=pair_chunk)
        assert chunked.counts == base.counts
        assert np.array_equal(chunked.accelerations, base.accelerations)
        assert np.array_equal(chunked.potentials, base.potentials)


class TestBackendRegistry:
    def test_numpy_always_present(self):
        assert "numpy" in BACKENDS
        assert get_backend("numpy").name == "numpy"

    def test_default_resolution(self):
        assert get_backend(None).name == "numpy"
        inst = get_backend("numpy")
        assert get_backend(inst) is inst

    def test_env_var_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert get_backend().name == "numpy"
        monkeypatch.setenv("REPRO_BACKEND", "no-such-backend")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_backend()

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_backend("fortran-iv")


class TestEdgeCases:
    """Regression pins for the degenerate inputs of the hot paths."""

    def test_direct_empty(self):
        res = direct_accelerations(np.empty((0, 3)), np.empty(0))
        assert res.accelerations.shape == (0, 3)
        assert res.potentials.shape == (0,)
        assert res.counts.p2p == 0

    def test_direct_single_particle(self):
        res = direct_accelerations(np.zeros((1, 3)), np.ones(1), eps=0.0)
        assert np.allclose(res.accelerations, 0.0)
        assert np.allclose(res.potentials, 0.0)

    @pytest.mark.parametrize("block", [1, 7, 16, 37, 1000])
    def test_direct_block_not_divisible(self, block):
        pos, m = _uniform_box(37, seed=2)
        ref = direct_accelerations(pos, m)
        res = direct_accelerations(pos, m, block=block)
        # Block size only changes fp summation order.
        assert np.allclose(res.accelerations, ref.accelerations, rtol=1e-13, atol=1e-13)
        assert np.allclose(res.potentials, ref.potentials, rtol=1e-13, atol=1e-13)
        assert res.counts == ref.counts

    def test_direct_block_validation(self):
        with pytest.raises(ValueError, match="block"):
            direct_accelerations(np.zeros((2, 3)), np.ones(2), block=0)

    def test_direct_zero_mass_particles(self):
        pos, m = _uniform_box(50, seed=4)
        m = m.copy()
        m[::3] = 0.0
        res = direct_accelerations(pos, m, eps=0.0)
        assert np.all(np.isfinite(res.accelerations))
        # Massless particles feel forces but exert none.
        massive = direct_accelerations(pos[m > 0], m[m > 0], eps=0.0)
        assert np.allclose(
            res.potentials[m > 0], massive.potentials, rtol=1e-12, atol=1e-14
        )

    def test_tree_single_leaf_group(self):
        # N <= bucket_size: the root is the only leaf, so the first
        # frontier pass is the group itself and every interaction is
        # direct.
        pos, m = _uniform_box(20, seed=6)
        tree = build_tree(pos, m, bucket_size=32)
        assert tree.leaf_ids.shape[0] == 1
        res = compute_forces(tree, eps=0.0)
        ref = direct_accelerations(pos, m, eps=0.0)
        assert res.counts.p2c == 0
        assert res.counts.p2p == 20 * 20
        assert np.max(np.abs(res.accelerations - ref.accelerations)) < 1e-12

    def test_tree_single_particle(self):
        tree = build_tree(np.zeros((1, 3)), np.ones(1))
        res = compute_forces(tree, eps=0.1)
        assert np.allclose(res.accelerations, 0.0)
        assert np.allclose(res.potentials, 0.0)

    def test_tree_zero_mass_particles(self):
        pos, m = _plummer(200, seed=8)
        m = m.copy()
        m[::4] = 0.0
        batched = compute_forces(build_tree(pos, m, bucket_size=8), eps=0.01)
        walker = compute_forces_reference(build_tree(pos, m, bucket_size=8), eps=0.01)
        assert np.all(np.isfinite(batched.accelerations))
        assert np.max(np.abs(batched.accelerations - walker.accelerations)) < 1e-10

    def test_tree_coincident_unsoftened(self):
        pos = np.zeros((12, 3))
        pos[6:] = 1.0
        tree = build_tree(pos, np.ones(12), bucket_size=4)
        res = compute_forces(tree, eps=0.0)
        ref = compute_forces_reference(tree, eps=0.0)
        assert np.all(np.isfinite(res.accelerations))
        assert np.max(np.abs(res.accelerations - ref.accelerations)) < 1e-10

    def test_evaluate_lists_validation(self):
        pos, m = _uniform_box(30, seed=1)
        tree = build_tree(pos, m)
        lists = build_interaction_lists(tree)
        with pytest.raises(ValueError, match="pair_chunk"):
            evaluate_interaction_lists(tree, lists, pair_chunk=0)
        with pytest.raises(ValueError, match="softening"):
            evaluate_interaction_lists(tree, lists, eps=-1.0)


class TestBatchedNeighborsVsReference:
    """The batched SPH neighbor walk returns the reference's sets."""

    @staticmethod
    def _sets(lists):
        return [np.sort(lists.of(i)).tolist() for i in range(lists.n_particles)]

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("n,bucket", [(1, 32), (2, 32), (5, 4), (64, 8), (300, 16)])
    def test_neighbor_sets_match(self, n, bucket, backend):
        from repro.sph import find_neighbors, find_neighbors_reference

        rng = np.random.default_rng(n)
        pos = rng.random((n, 3))
        tree = build_tree(pos, np.full(n, 1.0 / n), bucket_size=bucket)
        radii = rng.uniform(0.08, 0.3, n)
        batched = find_neighbors(tree, radii, backend=backend)
        ref = find_neighbors_reference(tree, radii)
        assert self._sets(batched) == self._sets(ref)

    def test_neighbor_lists_backend_exact(self):
        # pair_within/bincount_sum are exact comparisons and integer
        # counts, so the CSR arrays (not just the sets) must be
        # identical across every registered backend.
        from repro.sph import find_neighbors

        rng = np.random.default_rng(77)
        pos = rng.random((200, 3))
        tree = build_tree(pos, np.full(200, 1.0 / 200), bucket_size=8)
        radii = rng.uniform(0.05, 0.25, 200)
        ref = find_neighbors(tree, radii, backend=BACKENDS[0])
        for b in BACKENDS[1:]:
            got = find_neighbors(tree, radii, backend=b)
            assert np.array_equal(got.offsets, ref.offsets), b
            assert np.array_equal(got.neighbors, ref.neighbors), b

    def test_pair_chunk_invariance(self):
        from repro.sph import find_neighbors

        rng = np.random.default_rng(42)
        pos = rng.random((150, 3))
        tree = build_tree(pos, np.full(150, 1.0 / 150), bucket_size=8)
        radii = np.full(150, 0.2)
        base = find_neighbors(tree, radii)
        tiny = find_neighbors(tree, radii, pair_chunk=7)
        assert np.array_equal(base.offsets, tiny.offsets)
        assert np.array_equal(base.neighbors, tiny.neighbors)


def test_tree_accelerations_backend_kwarg():
    pos, m = _plummer(200, seed=12)
    a = tree_accelerations(pos, m, eps=0.01)
    b = tree_accelerations(pos, m, eps=0.01, backend="numpy")
    assert np.array_equal(a.accelerations, b.accelerations)
    assert a.counts == b.counts
