"""Hypothesis property tests for the batched kernel-backend layer.

Three physics invariants that any correct gravity kernel must satisfy,
checked on randomly drawn particle sets and tree shapes:

* **Permutation equivariance** — relabelling the particles permutes the
  accelerations and nothing else;
* **Translation invariance** — rigidly shifting the system leaves the
  accelerations (differences of positions) unchanged;
* **Walker equivalence** — the per-group interaction lists produced by
  the shared-frontier batched traversal are *identical* (same ids, same
  emission order) to the historical one-group-at-a-time walker.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import OpeningAngleMAC, build_tree, compute_forces
from repro.core.traversal import _collect_lists, build_interaction_lists

# -- strategies ------------------------------------------------------------

seeds = st.integers(min_value=0, max_value=2**32 - 1)
sizes = st.integers(min_value=1, max_value=160)
buckets = st.sampled_from([1, 4, 8, 16, 32])
thetas = st.sampled_from([0.3, 0.5, 0.8, 1.0])


def _particles(n, seed, clustered):
    rng = np.random.default_rng(seed)
    if clustered and n >= 4:
        # A few tight clusters: deep, uneven trees.
        k = max(2, n // 20)
        centers = rng.random((k, 3)) * 4.0
        pos = centers[rng.integers(0, k, n)] + 0.02 * rng.standard_normal((n, 3))
    else:
        pos = rng.random((n, 3))
    masses = rng.uniform(0.1, 2.0, n) / n
    return pos, masses


@settings(max_examples=25, deadline=None)
@given(seed=seeds, n=sizes, bucket=buckets, theta=thetas, clustered=st.booleans())
def test_permutation_equivariance(seed, n, bucket, theta, clustered):
    pos, m = _particles(n, seed, clustered)
    perm = np.random.default_rng(seed + 1).permutation(n)
    mac = OpeningAngleMAC(theta)
    base = compute_forces(build_tree(pos, m, bucket_size=bucket), mac=mac, eps=0.05)
    shuf = compute_forces(
        build_tree(pos[perm], m[perm], bucket_size=bucket), mac=mac, eps=0.05
    )
    # Results come back in input order; a relabelling must permute them.
    assert np.allclose(
        shuf.accelerations, base.accelerations[perm], rtol=1e-10, atol=1e-12
    )
    assert np.allclose(shuf.potentials, base.potentials[perm], rtol=1e-10, atol=1e-12)
    # The spatial tree is the same tree, so the work done is too.
    assert shuf.counts == base.counts


@settings(max_examples=25, deadline=None)
@given(
    seed=seeds,
    n=sizes,
    bucket=buckets,
    theta=thetas,
    shift=st.tuples(
        *[st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)] * 3
    ),
)
def test_translation_invariance(seed, n, bucket, theta, shift):
    pos, m = _particles(n, seed, clustered=False)
    mac = OpeningAngleMAC(theta)
    base = compute_forces(build_tree(pos, m, bucket_size=bucket), mac=mac, eps=0.05)
    moved = compute_forces(
        build_tree(pos + np.asarray(shift), m, bucket_size=bucket), mac=mac, eps=0.05
    )
    # Forces depend only on position differences; the shift survives
    # only as fp rounding of (x + t) - (com + t).
    scale = np.max(np.abs(base.accelerations)) + 1.0
    assert np.allclose(
        moved.accelerations, base.accelerations, rtol=1e-8, atol=1e-8 * scale
    )
    assert moved.counts == base.counts


@settings(max_examples=25, deadline=None)
@given(seed=seeds, n=sizes, bucket=buckets, theta=thetas, clustered=st.booleans())
def test_batched_lists_match_single_group_walker(seed, n, bucket, theta, clustered):
    pos, m = _particles(n, seed, clustered)
    tree = build_tree(pos, m, bucket_size=bucket)
    mac = OpeningAngleMAC(theta)
    lists = build_interaction_lists(tree, mac)
    assert np.array_equal(lists.groups, tree.leaf_ids)
    for g, group in enumerate(lists.groups):
        ref_cells, ref_parts = _collect_lists(tree, int(group), mac)
        assert np.array_equal(lists.cells_of(g), ref_cells), group
        # The batched walk stores direct sources as leaf ids; expand to
        # particle runs to compare against the reference's flat index
        # list (both emit in breadth-first order).
        leaves = lists.leaves_of(g)
        parts = (
            np.concatenate(
                [
                    np.arange(tree.start[l], tree.start[l] + tree.count[l], dtype=np.int64)
                    for l in leaves
                ]
            )
            if leaves.size
            else np.empty(0, dtype=np.int64)
        )
        assert np.array_equal(parts, ref_parts), group
