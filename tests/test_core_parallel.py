"""Tests for repro.core.parallel and abm: the parallel treecode."""

import numpy as np
import pytest

from repro.core import (
    ABMChannel,
    ParallelConfig,
    direct_accelerations,
    parallel_tree_accelerations,
    tree_accelerations,
)
from repro.simmpi import SpaceSimulatorCost, UniformCost, run


def _cloud(n, seed=0, clustered=False):
    rng = np.random.default_rng(seed)
    if clustered:
        r = rng.random(n) ** 3
        d = rng.standard_normal((n, 3))
        d /= np.linalg.norm(d, axis=1, keepdims=True)
        pos = r[:, None] * d
    else:
        pos = rng.random((n, 3))
    return pos, np.full(n, 1.0 / n)


class TestABMChannel:
    def test_batched_request_reply(self):
        def prog(comm):
            abm = ABMChannel(comm, lambda src, items: [i * 10 + comm.rank for i in items])
            for d in range(comm.size):
                if d != comm.rank:
                    abm.request(d, comm.rank)
                    abm.request(d, comm.rank + 100)
            replies = yield from abm.exchange()
            return [replies[d] for d in range(comm.size)]

        result = run(prog, 3)
        # Rank 0 asked rank 1 for (0, 100): replies 0*10+1, 100*10+1.
        assert result.returns[0][1] == [1, 1001]
        assert result.returns[0][2] == [2, 1002]
        assert result.returns[0][0] == []

    def test_globally_done(self):
        def prog(comm):
            abm = ABMChannel(comm, lambda src, items: items)
            done_first = yield from abm.globally_done(1 if comm.rank == 0 else 0)
            done_second = yield from abm.globally_done(0)
            return (done_first, done_second)

        result = run(prog, 4)
        assert all(r == (False, True) for r in result.returns)

    def test_self_request_rejected(self):
        def prog(comm):
            abm = ABMChannel(comm, lambda src, items: items)
            with pytest.raises(ValueError):
                abm.request(comm.rank, 1)
            yield comm.barrier()
            return "ok"

        assert run(prog, 2).returns == ["ok", "ok"]

    def test_serve_arity_checked(self):
        def prog(comm):
            abm = ABMChannel(comm, lambda src, items: [])  # wrong arity
            # Symmetric traffic so every rank hits the serve error at
            # the same point (between the two alltoalls).
            abm.request(1 - comm.rank, 42)
            try:
                yield from abm.exchange()
            except RuntimeError:
                return "caught"
            return "missed"

        result = run(prog, 2)
        assert result.returns == ["caught", "caught"]


class TestParallelCorrectness:
    def test_matches_direct_sum(self):
        pos, m = _cloud(600, seed=1)
        exact = direct_accelerations(pos, m, eps=0.05)
        par = parallel_tree_accelerations(
            pos, m, n_ranks=4, config=ParallelConfig(theta=0.5, eps=0.05, bucket_size=16)
        )
        num = np.linalg.norm(par.accelerations - exact.accelerations, axis=1)
        den = np.linalg.norm(exact.accelerations, axis=1)
        assert np.median(num / den) < 1e-3
        assert np.max(num / den) < 0.05

    def test_matches_serial_treecode_closely(self):
        pos, m = _cloud(500, seed=2, clustered=True)
        cfg = ParallelConfig(theta=0.5, eps=0.05, bucket_size=16)
        serial = tree_accelerations(pos, m, theta=0.5, eps=0.05, bucket_size=16)
        par = parallel_tree_accelerations(pos, m, n_ranks=5, config=cfg)
        num = np.linalg.norm(par.accelerations - serial.accelerations, axis=1)
        den = np.linalg.norm(serial.accelerations, axis=1)
        # Both approximate the same physics with the same MAC; their
        # disagreement is bounded by twice the MAC error.
        assert np.median(num / den) < 2e-3

    def test_rank_count_invariance(self):
        # The virtual global tree is rank-independent, so forces agree
        # across processor counts to MAC-error level.
        pos, m = _cloud(400, seed=3)
        cfg = ParallelConfig(theta=0.6, eps=0.05, bucket_size=16)
        results = [
            parallel_tree_accelerations(pos, m, n_ranks=p, config=cfg).accelerations
            for p in (1, 2, 7)
        ]
        for other in results[1:]:
            num = np.linalg.norm(other - results[0], axis=1)
            den = np.linalg.norm(results[0], axis=1)
            assert np.median(num / den) < 2e-3

    def test_single_rank_runs(self):
        pos, m = _cloud(100, seed=4)
        par = parallel_tree_accelerations(pos, m, n_ranks=1)
        exact = direct_accelerations(pos, m, eps=0.05)
        num = np.linalg.norm(par.accelerations - exact.accelerations, axis=1)
        den = np.linalg.norm(exact.accelerations, axis=1)
        assert np.median(num / den) < 2e-3

    def test_potentials_match_direct(self):
        pos, m = _cloud(300, seed=5)
        exact = direct_accelerations(pos, m, eps=0.05)
        par = parallel_tree_accelerations(
            pos, m, n_ranks=3, config=ParallelConfig(theta=0.4, eps=0.05)
        )
        assert np.allclose(par.potentials, exact.potentials, rtol=5e-3)

    def test_deterministic(self):
        pos, m = _cloud(250, seed=6)
        a = parallel_tree_accelerations(pos, m, n_ranks=4)
        b = parallel_tree_accelerations(pos, m, n_ranks=4)
        assert np.array_equal(a.accelerations, b.accelerations)
        assert a.sim.clocks == b.sim.clocks

    def test_interaction_counts_reported(self):
        pos, m = _cloud(300, seed=7)
        par = parallel_tree_accelerations(pos, m, n_ranks=3)
        assert par.counts.p2p > 0
        assert par.counts.p2c > 0
        assert par.counts.groups > 0
        assert par.counts.flops > 0

    def test_validation(self):
        pos, m = _cloud(10)
        with pytest.raises(ValueError):
            parallel_tree_accelerations(pos, m, n_ranks=0)
        with pytest.raises(ValueError):
            parallel_tree_accelerations(pos, m, n_ranks=11)
        with pytest.raises(ValueError):
            ParallelConfig(eps=-1.0)
        with pytest.raises(ValueError):
            ParallelConfig(kernel_efficiency=0.0)


class TestParallelPerformance:
    def test_virtual_time_positive_with_cost_model(self):
        pos, m = _cloud(400, seed=8)
        par = parallel_tree_accelerations(
            pos, m, n_ranks=4, cost=SpaceSimulatorCost()
        )
        assert par.sim.elapsed > 0
        assert par.mflops_per_proc > 0
        assert all(s.bytes_sent > 0 for s in par.sim.stats)

    def test_more_ranks_less_elapsed_time(self):
        # Strong scaling on a fixed problem: 8 simulated processors
        # should beat 1 by a wide margin under a uniform cost model.
        pos, m = _cloud(3000, seed=9)
        cost = UniformCost(latency_s=50e-6, mbytes_s=90.0, mflops=40.0)
        t1 = parallel_tree_accelerations(pos, m, n_ranks=1, cost=cost).sim.elapsed
        t8 = parallel_tree_accelerations(pos, m, n_ranks=8, cost=cost).sim.elapsed
        assert t8 < t1
        assert t1 / t8 > 3.0

    def test_parallel_efficiency_below_one_with_comm(self):
        pos, m = _cloud(600, seed=10)
        par = parallel_tree_accelerations(
            pos, m, n_ranks=6, cost=SpaceSimulatorCost()
        )
        eff = par.sim.parallel_efficiency()
        assert 0.0 < eff <= 1.0
