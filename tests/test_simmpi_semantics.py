"""SimMPI conformance suite: the MPI semantics the engine guarantees.

Where ``test_simmpi_engine.py`` exercises the API surface, this file
pins the *standard's* behavioral contracts — the ones the parallel
treecode and the resilience layer silently rely on:

* non-overtaking: messages between one (source, dest) pair with
  matching tags are received in posting order, under randomized
  interleavings (MPI 4.1 §3.5);
* wildcard matching: ``ANY_SOURCE``/``ANY_TAG`` receives match the
  earliest-posted eligible send, and tags are selective;
* protocol split: eager sends complete at the sender without a
  matching receive; rendezvous sends complete only when matched;
* collectives: every rank must call the same collective in the same
  order — kind disagreement raises, in whatever call slot it occurs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmpi import (
    ANY_SOURCE,
    ANY_TAG,
    CollectiveMismatchError,
    DeadlockError,
    UniformCost,
    run,
)

COST = UniformCost(latency_s=10e-6, mbytes_s=100.0)
EAGER = COST.eager_nbytes


class TestNonOvertaking:
    @given(st.integers(0, 2**31 - 1), st.integers(2, 12))
    @settings(max_examples=25, deadline=None)
    def test_same_pair_same_tag_fifo(self, seed, n_msgs):
        """Messages on one (src, dst, tag) channel arrive in post order,
        whatever mix of eager and rendezvous sizes the sender used."""
        rng = np.random.default_rng(seed)
        # Mix tiny (eager) and huge (rendezvous) payload descriptors.
        sizes = rng.choice([8, EAGER + 1], size=n_msgs).tolist()

        def sender(comm):
            for i, size in enumerate(sizes):
                yield comm.isend(np.full(size // 8, i, dtype=np.int64), dest=1, tag=7)
            yield comm.barrier()

        def receiver(comm):
            seen = []
            for _ in sizes:
                msg = yield comm.recv(source=0, tag=7)
                seen.append(int(msg[0]))
            yield comm.barrier()
            return seen

        result = run([sender, receiver], cost=COST)
        assert result.returns[1] == list(range(n_msgs))

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_per_tag_channels_are_independent(self, seed):
        """Interleaved tags never reorder *within* a tag channel."""
        rng = np.random.default_rng(seed)
        schedule = [(int(rng.integers(2)), i) for i in range(10)]

        def sender(comm):
            for tag, i in schedule:
                yield comm.isend((tag, i), dest=1, tag=tag)
            yield comm.barrier()

        def receiver(comm):
            out = {0: [], 1: []}
            for tag in (0, 1):
                want = sum(1 for t, _ in schedule if t == tag)
                for _ in range(want):
                    msg = yield comm.recv(source=0, tag=tag)
                    out[tag].append(msg)
            yield comm.barrier()
            return out

        result = run([sender, receiver], cost=COST)
        for tag in (0, 1):
            expected = [(t, i) for t, i in schedule if t == tag]
            assert result.returns[1][tag] == expected

    def test_wildcard_recv_takes_earliest_posted(self):
        """An ANY_SOURCE/ANY_TAG receive matches the send that was
        posted first in virtual time, not an arbitrary one."""

        def early(comm):
            yield comm.isend("early", dest=2, tag=5)
            yield comm.barrier()

        def late(comm):
            yield comm.elapse(1.0)
            yield comm.isend("late", dest=2, tag=9)
            yield comm.barrier()

        def sink(comm):
            yield comm.elapse(2.0)  # both sends already posted
            first = yield comm.recv(source=ANY_SOURCE, tag=ANY_TAG)
            second = yield comm.recv(source=ANY_SOURCE, tag=ANY_TAG)
            yield comm.barrier()
            return [first, second]

        result = run([early, late, sink], cost=COST)
        assert result.returns[2] == ["early", "late"]


class TestWildcardMatching:
    def test_any_source_fixed_tag_filters_on_tag(self):
        def noise(comm):
            yield comm.isend("noise", dest=2, tag=1)
            yield comm.isend("signal", dest=2, tag=2)
            yield comm.barrier()

        def other(comm):
            yield comm.elapse(0.5)
            yield comm.isend("signal2", dest=2, tag=2)
            yield comm.barrier()

        def sink(comm):
            yield comm.elapse(1.0)
            a = yield comm.recv(source=ANY_SOURCE, tag=2)
            b = yield comm.recv(source=ANY_SOURCE, tag=2)
            c = yield comm.recv(source=0, tag=ANY_TAG)
            yield comm.barrier()
            return [a, b, c]

        result = run([noise, other, sink], cost=COST)
        assert result.returns[2] == ["signal", "signal2", "noise"]

    def test_fixed_source_any_tag_filters_on_source(self):
        def s0(comm):
            yield comm.isend("from0", dest=2, tag=11)
            yield comm.barrier()

        def s1(comm):
            yield comm.isend("from1", dest=2, tag=12)
            yield comm.barrier()

        def sink(comm):
            yield comm.elapse(1.0)
            got = yield comm.recv(source=1, tag=ANY_TAG)
            rest = yield comm.recv(source=ANY_SOURCE, tag=ANY_TAG)
            yield comm.barrier()
            return [got, rest]

        result = run([s0, s1, sink], cost=COST)
        assert result.returns[2] == ["from1", "from0"]


class TestEagerVsRendezvous:
    def test_eager_send_returns_before_any_recv(self):
        """A small blocking send completes even though the receive is
        posted much later: the eager buffer decouples them."""

        def sender(comm):
            yield comm.send(b"x" * 64, dest=1)
            t_after = yield comm.now()
            yield comm.barrier()
            return t_after

        def receiver(comm):
            yield comm.elapse(5.0)
            yield comm.recv(source=0)
            yield comm.barrier()

        result = run([sender, receiver], cost=COST)
        assert result.returns[0] < 1.0  # returned long before t=5

    def test_rendezvous_send_waits_for_the_receiver(self):
        def sender(comm):
            yield comm.send(np.zeros(EAGER, dtype=np.uint8), dest=1)
            t_after = yield comm.now()
            yield comm.barrier()
            return t_after

        def receiver(comm):
            yield comm.elapse(5.0)
            yield comm.recv(source=0)
            yield comm.barrier()

        # One byte over the threshold forces the rendezvous path.
        def big_sender(comm):
            yield comm.send(np.zeros(EAGER + 1, dtype=np.uint8), dest=1)
            t_after = yield comm.now()
            yield comm.barrier()
            return t_after

        eager_t = run([sender, receiver], cost=COST).returns[0]
        rendezvous_t = run([big_sender, receiver], cost=COST).returns[0]
        assert eager_t < 5.0 <= rendezvous_t

    @given(st.integers(-3, 3))
    @settings(max_examples=7, deadline=None)
    def test_protocol_boundary_is_exact(self, delta):
        """Sends at most the threshold are eager; above, rendezvous."""
        nbytes = EAGER + delta

        def sender(comm):
            yield comm.send(np.zeros(nbytes, dtype=np.uint8), dest=1)
            t = yield comm.now()
            yield comm.barrier()
            return t

        def receiver(comm):
            yield comm.elapse(2.0)
            yield comm.recv(source=0)
            yield comm.barrier()

        t_send_done = run([sender, receiver], cost=COST).returns[0]
        if nbytes <= EAGER:
            assert t_send_done < 2.0
        else:
            assert t_send_done >= 2.0

    def test_eager_message_content_still_delivered(self):
        def sender(comm):
            yield comm.send(np.arange(4), dest=1, tag=3)
            yield comm.barrier()

        def receiver(comm):
            yield comm.elapse(1.0)
            data = yield comm.recv(source=0, tag=3)
            yield comm.barrier()
            return data.tolist()

        assert run([sender, receiver], cost=COST).returns[1] == [0, 1, 2, 3]


class TestCollectiveAgreement:
    def test_kind_mismatch_raises(self):
        def a(comm):
            yield comm.barrier()

        def b(comm):
            yield comm.allreduce(1)

        with pytest.raises(CollectiveMismatchError):
            run([a, b], cost=COST)

    def test_mismatch_detected_in_later_slot(self):
        """Agreement is per call index: slot 0 agrees, slot 1 doesn't."""

        def a(comm):
            yield comm.barrier()
            yield comm.bcast("x", root=0)

        def b(comm):
            yield comm.barrier()
            yield comm.gather("y", root=0)

        with pytest.raises(CollectiveMismatchError) as err:
            run([a, b], cost=COST)
        assert "#1" in str(err.value)

    def test_matching_kinds_in_order_work(self):
        def prog(comm):
            yield comm.barrier()
            total = yield comm.allreduce(comm.rank)
            everything = yield comm.allgather(comm.rank)
            return (total, everything)

        result = run(prog, 4, cost=COST)
        assert result.returns == [(6, [0, 1, 2, 3])] * 4

    def test_missing_collective_participant_deadlocks(self):
        """One rank skipping a collective is a hang, not a hidden pass."""

        def a(comm):
            yield comm.barrier()

        def b(comm):
            if False:
                yield  # generator, but never calls the barrier
            return None

        with pytest.raises(DeadlockError):
            run([a, b], cost=COST)
