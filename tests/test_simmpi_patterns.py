"""Tests for repro.simmpi.patterns: p2p-composed collectives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmpi import UniformCost, patterns, run


class TestSendrecv:
    def test_full_ring_no_deadlock(self):
        def prog(comm):
            data = yield from patterns.sendrecv(
                comm, comm.rank, (comm.rank + 1) % comm.size, (comm.rank - 1) % comm.size
            )
            return data

        result = run(prog, 6)
        assert result.returns == [5, 0, 1, 2, 3, 4]

    def test_ring_shift_by_k(self):
        def prog(comm):
            data = yield from patterns.ring_shift(comm, comm.rank * 10, shift=2)
            return data

        result = run(prog, 5)
        assert result.returns == [30, 40, 0, 10, 20]

    def test_single_rank_shift_identity(self):
        def prog(comm):
            data = yield from patterns.ring_shift(comm, "x")
            return data

        assert run(prog, 1).returns == ["x"]


class TestRingAllgather:
    def test_collects_all_blocks_in_order(self):
        def prog(comm):
            blocks = yield from patterns.ring_allgather(comm, f"r{comm.rank}")
            return blocks

        result = run(prog, 5)
        for blocks in result.returns:
            assert blocks == [f"r{i}" for i in range(5)]

    def test_matches_builtin_allgather(self):
        def prog(comm):
            ours = yield from patterns.ring_allgather(comm, comm.rank**2)
            builtin = yield comm.allgather(comm.rank**2)
            return ours == builtin

        assert all(run(prog, 7).returns)

    def test_ring_cost_scales_linearly(self):
        # Explicit ring: (P-1) sequential rounds; the analytic builtin
        # uses the same (P-1) scaling — they should agree within ~3x.
        def prog_ring(comm):
            yield from patterns.ring_allgather(comm, np.zeros(1024))

        def prog_builtin(comm):
            yield comm.allgather(np.zeros(1024))

        cost = UniformCost(latency_s=1e-4, mbytes_s=100.0)
        t_ring = run(prog_ring, 8, cost).elapsed
        t_builtin = run(prog_builtin, 8, cost).elapsed
        assert t_ring > 0 and t_builtin > 0
        assert 1.0 / 3.0 < t_ring / t_builtin < 3.0


class TestBinomialBcast:
    def test_everyone_gets_roots_payload(self):
        def prog(comm):
            data = yield from patterns.binomial_bcast(comm, {"v": 7} if comm.rank == 2 else None, root=2)
            return data

        result = run(prog, 6)
        assert all(r == {"v": 7} for r in result.returns)

    def test_log_rounds_beat_sequential_sends(self):
        # Binomial bcast latency ~ log2(P); a naive root-sends-to-all
        # chain is ~P. Compare virtual times at P=16.
        def prog_binomial(comm):
            yield from patterns.binomial_bcast(comm, b"x" * 100, root=0)

        def prog_naive(comm):
            if comm.rank == 0:
                for d in range(1, comm.size):
                    yield comm.send(b"x" * 100, dest=d, tag=9)
            else:
                yield comm.recv(source=0, tag=9)

        cost = UniformCost(latency_s=1e-3, mbytes_s=1000.0)
        t_b = run(prog_binomial, 16, cost).elapsed
        t_n = run(prog_naive, 16, cost).elapsed
        assert t_b < t_n

    def test_non_power_of_two(self):
        def prog(comm):
            data = yield from patterns.binomial_bcast(comm, comm.rank if comm.rank == 0 else None)
            return data

        assert run(prog, 11).returns == [0] * 11


class TestPairwiseAlltoall:
    def test_matches_builtin(self):
        def prog(comm):
            blocks = [(comm.rank, d) for d in range(comm.size)]
            ours = yield from patterns.pairwise_alltoall(comm, blocks)
            builtin = yield comm.alltoall(blocks)
            return ours == builtin

        assert all(run(prog, 6).returns)

    def test_block_count_checked(self):
        def prog(comm):
            try:
                yield from patterns.pairwise_alltoall(comm, [1, 2])
            except ValueError:
                yield comm.barrier()
                return "caught"

        assert run(prog, 4).returns == ["caught"] * 4

    @given(st.integers(2, 8), st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_property_permutation_routing(self, size, seed):
        """Random payload matrices route correctly at any rank count."""
        rng = np.random.default_rng(seed)
        matrix = rng.integers(0, 100, (size, size)).tolist()

        def prog(comm):
            got = yield from patterns.pairwise_alltoall(comm, matrix[comm.rank])
            return got

        result = run(prog, size)
        for dest in range(size):
            assert result.returns[dest] == [matrix[src][dest] for src in range(size)]


class TestBatchedRequestReply:
    def test_round_trip_serves_every_peer(self):
        def prog(comm):
            reqs = [[comm.rank * 100 + p] for p in range(comm.size)]
            replies, _ = yield from patterns.batched_request_reply(
                comm, reqs, lambda peer, batch: [x * 2 for x in batch]
            )
            return replies

        result = run(prog, 4)
        for rank, replies in enumerate(result.returns):
            assert replies[rank] is None
            for p in range(4):
                if p != rank:
                    # Peer p doubled the single-item batch we sent it.
                    assert replies[p] == [(rank * 100 + p) * 2]

    def test_empty_batches_allowed(self):
        def prog(comm):
            reqs = [[] for _ in range(comm.size)]
            replies, _ = yield from patterns.batched_request_reply(
                comm, reqs, lambda peer, batch: batch
            )
            return [r for r in replies if r]

        assert run(prog, 3).returns == [[], [], []]

    def test_overlap_result_and_compute_charge(self):
        def prog(comm):
            def overlap():
                yield comm.compute(flops=1e6, label="overlap-work")
                return "did-work"

            reqs = [[1] for _ in range(comm.size)]
            _, got = yield from patterns.batched_request_reply(
                comm, reqs, lambda peer, batch: batch, overlap=overlap()
            )
            return got

        result = run(prog, 3)
        assert result.returns == ["did-work"] * 3

    def test_successive_rounds_keep_matching(self):
        # FIFO per (source, tag) must disambiguate rounds: run three
        # rounds back to back and check each round's payloads.
        def prog(comm):
            seen = []
            for rnd in range(3):
                reqs = [[(rnd, comm.rank)] for _ in range(comm.size)]
                replies, _ = yield from patterns.batched_request_reply(
                    comm, reqs, lambda peer, batch: batch
                )
                seen.append(replies)
            return seen

        result = run(prog, 4)
        for rank, rounds in enumerate(result.returns):
            for rnd, replies in enumerate(rounds):
                for p in range(4):
                    if p != rank:
                        assert replies[p] == [(rnd, rank)]

    def test_overlap_hides_wire_time(self):
        # With overlap compute roughly matching the wire time, the
        # batched pattern should complete in less virtual time than
        # sending the same bytes through blocking alltoalls.
        payload = np.zeros(4096)

        def prog_async(comm):
            def overlap():
                yield comm.compute(flops=5e7, label="useful")

            reqs = [payload for _ in range(comm.size)]
            yield from patterns.batched_request_reply(
                comm, list(reqs), lambda peer, batch: payload, overlap=overlap()
            )

        def prog_blocking(comm):
            yield comm.alltoall([payload for _ in range(comm.size)])
            yield comm.alltoall([payload for _ in range(comm.size)])
            yield comm.compute(flops=5e7, label="useful")

        cost = UniformCost(latency_s=1e-4, mbytes_s=100.0)
        t_async = run(prog_async, 6, cost).elapsed
        t_blocking = run(prog_blocking, 6, cost).elapsed
        assert t_async < t_blocking

    def test_requires_one_batch_per_peer(self):
        def prog(comm):
            try:
                yield from patterns.batched_request_reply(
                    comm, [[]], lambda peer, batch: batch
                )
            except ValueError:
                yield comm.barrier()
                return "caught"

        assert run(prog, 3).returns == ["caught"] * 3


class TestTreeCollectives:
    """The O(log P) collectives must be drop-in equal to the flat
    engine primitives — bit-for-bit, at any group size."""

    @given(st.integers(1, 24), st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_allreduce_bitwise_equal_to_flat(self, size, seed):
        rng = np.random.default_rng(seed)
        scale = 10.0 ** int(rng.integers(-3, 4))
        vals = [float(v) * scale for v in rng.standard_normal(size)]

        def prog(comm):
            flat = yield comm.allreduce(vals[comm.rank])
            tree = yield from patterns.tree_allreduce(comm, vals[comm.rank])
            # repr equality pins the exact float bits, not just ==.
            return repr(flat) == repr(tree)

        assert all(run(prog, size).returns)

    @given(st.integers(1, 24), st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_reduce_and_bcast_match_flat(self, size, seed):
        rng = np.random.default_rng(seed)
        root = int(rng.integers(0, size))
        vals = [float(v) for v in rng.standard_normal(size)]

        def prog(comm):
            f_red = yield comm.reduce(vals[comm.rank], root=root)
            t_red = yield from patterns.tree_reduce(comm, vals[comm.rank], root=root)
            f_bc = yield comm.bcast(vals[0] if comm.rank == root else None, root=root)
            t_bc = yield from patterns.tree_bcast(
                comm, vals[0] if comm.rank == root else None, root=root
            )
            return repr(f_red) == repr(t_red) and repr(f_bc) == repr(t_bc)

        assert all(run(prog, size).returns)

    @given(st.integers(1, 20), st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_allgather_ragged_payloads(self, size, seed):
        # Per-rank payloads of *different* shapes and types — the tree
        # forwards them opaquely, exactly like the flat primitive.
        rng = np.random.default_rng(seed)
        payloads = [
            list(range(int(rng.integers(0, 6)))) if r % 3 else {"rank": r}
            for r in range(size)
        ]

        def prog(comm):
            flat = yield comm.allgather(payloads[comm.rank])
            tree = yield from patterns.tree_allgather(comm, payloads[comm.rank])
            return flat == tree

        assert all(run(prog, size).returns)

    @given(st.integers(1, 20), st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_gather_scatter_roundtrip(self, size, seed):
        rng = np.random.default_rng(seed)
        root = int(rng.integers(0, size))

        def prog(comm):
            gathered = yield from patterns.tree_gather(comm, comm.rank * 11, root=root)
            if comm.rank == root:
                assert gathered == [r * 11 for r in range(size)]
                items = [g + 1 for g in gathered]
            else:
                items = None
            mine = yield from patterns.tree_scatter(comm, items, root=root)
            return mine == comm.rank * 11 + 1

        assert all(run(prog, size).returns)

    @pytest.mark.parametrize("size", [1, 2, 3, 5, 8, 13, 16, 31, 33])
    def test_barrier_all_sizes(self, size):
        def prog(comm):
            yield from patterns.tree_barrier(comm)
            return "ok"

        assert run(prog, size).returns == ["ok"] * size


class TestAutoWrappers:
    def test_selection_by_group_size(self):
        # Below the threshold the wrapper must use the engine primitive
        # (exactly one collective call in the stats per rank); above it
        # the tree algorithm (gather + bcast p2p messages, more total
        # sends than ranks).
        def prog(comm):
            total = yield from patterns.allreduce(comm, 1)
            return total

        small = run(prog, 4)
        assert small.returns == [4] * 4
        assert all(s.msgs_sent == 1 for s in small.stats)

        big_size = patterns.FLAT_COLLECTIVE_MAX + 1
        big = run(prog, big_size)
        assert big.returns == [big_size] * big_size
        assert sum(s.msgs_sent for s in big.stats) > big_size

    def test_explicit_algorithm_override(self):
        def prog(comm):
            flat = yield from patterns.allreduce(comm, comm.rank, algorithm="flat")
            tree = yield from patterns.allreduce(comm, comm.rank, algorithm="tree")
            return flat == tree == comm.size * (comm.size - 1) // 2

        assert all(run(prog, 6).returns)

    def test_unknown_algorithm_rejected(self):
        def prog(comm):
            yield from patterns.allreduce(comm, 1, algorithm="ring")

        with pytest.raises(ValueError, match="algorithm"):
            run(prog, 2)

    def test_wrapper_mismatch_detected_in_flat_regime(self):
        from repro.simmpi import CollectiveMismatchError

        def prog(comm):
            if comm.rank == 0:
                yield from patterns.allreduce(comm, 1)
            else:
                yield from patterns.barrier(comm)

        with pytest.raises(CollectiveMismatchError):
            run(prog, 4)


class TestSparseBatchedRequestReply:
    @staticmethod
    def _ring_prog(sparse):
        def prog(comm):
            reqs = [[] for _ in range(comm.size)]
            reqs[(comm.rank + 1) % comm.size] = [comm.rank]
            replies, _ = yield from patterns.batched_request_reply(
                comm, reqs, lambda peer, batch: [x * 10 for x in batch],
                sparse=sparse,
            )
            return replies

        return prog

    def test_sparse_replies_match_dense_for_active_pairs(self):
        size = 6
        dense = run(self._ring_prog(False), size).returns
        sparse = run(self._ring_prog(True), size).returns
        for rank, (d, s) in enumerate(zip(dense, sparse)):
            target = (rank + 1) % size
            assert s[target] == d[target] == [rank * 10]
            # Inactive pairs: dense serves the empty batch, sparse
            # never sends one.
            for p in range(size):
                if p not in (rank, target):
                    assert d[p] == [] and s[p] is None

    def test_sparse_sends_fewer_messages(self):
        size = 8
        dense = run(self._ring_prog(False), size)
        sparse = run(self._ring_prog(True), size)
        assert sum(s.msgs_sent for s in sparse.stats) < sum(
            s.msgs_sent for s in dense.stats
        )

    def test_auto_gate_follows_group_size(self):
        # At FLAT_COLLECTIVE_MAX ranks the default is the dense round
        # (empty batches travel); one rank more switches to sparse.
        def prog(comm):
            reqs = [[] for _ in range(comm.size)]
            replies, _ = yield from patterns.batched_request_reply(
                comm, reqs, lambda peer, batch: list(batch)
            )
            return replies

        # Dense: every rank sends a request and a reply to each peer.
        at_gate = run(prog, patterns.FLAT_COLLECTIVE_MAX)
        assert all(s.msgs_sent == 2 * (patterns.FLAT_COLLECTIVE_MAX - 1)
                   for s in at_gate.stats)
        # Sparse with nothing to send: just the flags alltoall.
        above = run(prog, patterns.FLAT_COLLECTIVE_MAX + 1)
        assert all(s.msgs_sent == 1 for s in above.stats)
