"""Tests for repro.simmpi.patterns: p2p-composed collectives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmpi import UniformCost, patterns, run


class TestSendrecv:
    def test_full_ring_no_deadlock(self):
        def prog(comm):
            data = yield from patterns.sendrecv(
                comm, comm.rank, (comm.rank + 1) % comm.size, (comm.rank - 1) % comm.size
            )
            return data

        result = run(prog, 6)
        assert result.returns == [5, 0, 1, 2, 3, 4]

    def test_ring_shift_by_k(self):
        def prog(comm):
            data = yield from patterns.ring_shift(comm, comm.rank * 10, shift=2)
            return data

        result = run(prog, 5)
        assert result.returns == [30, 40, 0, 10, 20]

    def test_single_rank_shift_identity(self):
        def prog(comm):
            data = yield from patterns.ring_shift(comm, "x")
            return data

        assert run(prog, 1).returns == ["x"]


class TestRingAllgather:
    def test_collects_all_blocks_in_order(self):
        def prog(comm):
            blocks = yield from patterns.ring_allgather(comm, f"r{comm.rank}")
            return blocks

        result = run(prog, 5)
        for blocks in result.returns:
            assert blocks == [f"r{i}" for i in range(5)]

    def test_matches_builtin_allgather(self):
        def prog(comm):
            ours = yield from patterns.ring_allgather(comm, comm.rank**2)
            builtin = yield comm.allgather(comm.rank**2)
            return ours == builtin

        assert all(run(prog, 7).returns)

    def test_ring_cost_scales_linearly(self):
        # Explicit ring: (P-1) sequential rounds; the analytic builtin
        # uses the same (P-1) scaling — they should agree within ~3x.
        def prog_ring(comm):
            yield from patterns.ring_allgather(comm, np.zeros(1024))

        def prog_builtin(comm):
            yield comm.allgather(np.zeros(1024))

        cost = UniformCost(latency_s=1e-4, mbytes_s=100.0)
        t_ring = run(prog_ring, 8, cost).elapsed
        t_builtin = run(prog_builtin, 8, cost).elapsed
        assert t_ring > 0 and t_builtin > 0
        assert 1.0 / 3.0 < t_ring / t_builtin < 3.0


class TestBinomialBcast:
    def test_everyone_gets_roots_payload(self):
        def prog(comm):
            data = yield from patterns.binomial_bcast(comm, {"v": 7} if comm.rank == 2 else None, root=2)
            return data

        result = run(prog, 6)
        assert all(r == {"v": 7} for r in result.returns)

    def test_log_rounds_beat_sequential_sends(self):
        # Binomial bcast latency ~ log2(P); a naive root-sends-to-all
        # chain is ~P. Compare virtual times at P=16.
        def prog_binomial(comm):
            yield from patterns.binomial_bcast(comm, b"x" * 100, root=0)

        def prog_naive(comm):
            if comm.rank == 0:
                for d in range(1, comm.size):
                    yield comm.send(b"x" * 100, dest=d, tag=9)
            else:
                yield comm.recv(source=0, tag=9)

        cost = UniformCost(latency_s=1e-3, mbytes_s=1000.0)
        t_b = run(prog_binomial, 16, cost).elapsed
        t_n = run(prog_naive, 16, cost).elapsed
        assert t_b < t_n

    def test_non_power_of_two(self):
        def prog(comm):
            data = yield from patterns.binomial_bcast(comm, comm.rank if comm.rank == 0 else None)
            return data

        assert run(prog, 11).returns == [0] * 11


class TestPairwiseAlltoall:
    def test_matches_builtin(self):
        def prog(comm):
            blocks = [(comm.rank, d) for d in range(comm.size)]
            ours = yield from patterns.pairwise_alltoall(comm, blocks)
            builtin = yield comm.alltoall(blocks)
            return ours == builtin

        assert all(run(prog, 6).returns)

    def test_block_count_checked(self):
        def prog(comm):
            try:
                yield from patterns.pairwise_alltoall(comm, [1, 2])
            except ValueError:
                yield comm.barrier()
                return "caught"

        assert run(prog, 4).returns == ["caught"] * 4

    @given(st.integers(2, 8), st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_property_permutation_routing(self, size, seed):
        """Random payload matrices route correctly at any rank count."""
        rng = np.random.default_rng(seed)
        matrix = rng.integers(0, 100, (size, size)).tolist()

        def prog(comm):
            got = yield from patterns.pairwise_alltoall(comm, matrix[comm.rank])
            return got

        result = run(prog, size)
        for dest in range(size):
            assert result.returns[dest] == [matrix[src][dest] for src in range(size)]


class TestBatchedRequestReply:
    def test_round_trip_serves_every_peer(self):
        def prog(comm):
            reqs = [[comm.rank * 100 + p] for p in range(comm.size)]
            replies, _ = yield from patterns.batched_request_reply(
                comm, reqs, lambda peer, batch: [x * 2 for x in batch]
            )
            return replies

        result = run(prog, 4)
        for rank, replies in enumerate(result.returns):
            assert replies[rank] is None
            for p in range(4):
                if p != rank:
                    # Peer p doubled the single-item batch we sent it.
                    assert replies[p] == [(rank * 100 + p) * 2]

    def test_empty_batches_allowed(self):
        def prog(comm):
            reqs = [[] for _ in range(comm.size)]
            replies, _ = yield from patterns.batched_request_reply(
                comm, reqs, lambda peer, batch: batch
            )
            return [r for r in replies if r]

        assert run(prog, 3).returns == [[], [], []]

    def test_overlap_result_and_compute_charge(self):
        def prog(comm):
            def overlap():
                yield comm.compute(flops=1e6, label="overlap-work")
                return "did-work"

            reqs = [[1] for _ in range(comm.size)]
            _, got = yield from patterns.batched_request_reply(
                comm, reqs, lambda peer, batch: batch, overlap=overlap()
            )
            return got

        result = run(prog, 3)
        assert result.returns == ["did-work"] * 3

    def test_successive_rounds_keep_matching(self):
        # FIFO per (source, tag) must disambiguate rounds: run three
        # rounds back to back and check each round's payloads.
        def prog(comm):
            seen = []
            for rnd in range(3):
                reqs = [[(rnd, comm.rank)] for _ in range(comm.size)]
                replies, _ = yield from patterns.batched_request_reply(
                    comm, reqs, lambda peer, batch: batch
                )
                seen.append(replies)
            return seen

        result = run(prog, 4)
        for rank, rounds in enumerate(result.returns):
            for rnd, replies in enumerate(rounds):
                for p in range(4):
                    if p != rank:
                        assert replies[p] == [(rnd, rank)]

    def test_overlap_hides_wire_time(self):
        # With overlap compute roughly matching the wire time, the
        # batched pattern should complete in less virtual time than
        # sending the same bytes through blocking alltoalls.
        payload = np.zeros(4096)

        def prog_async(comm):
            def overlap():
                yield comm.compute(flops=5e7, label="useful")

            reqs = [payload for _ in range(comm.size)]
            yield from patterns.batched_request_reply(
                comm, list(reqs), lambda peer, batch: payload, overlap=overlap()
            )

        def prog_blocking(comm):
            yield comm.alltoall([payload for _ in range(comm.size)])
            yield comm.alltoall([payload for _ in range(comm.size)])
            yield comm.compute(flops=5e7, label="useful")

        cost = UniformCost(latency_s=1e-4, mbytes_s=100.0)
        t_async = run(prog_async, 6, cost).elapsed
        t_blocking = run(prog_blocking, 6, cost).elapsed
        assert t_async < t_blocking

    def test_requires_one_batch_per_peer(self):
        def prog(comm):
            try:
                yield from patterns.batched_request_reply(
                    comm, [[]], lambda peer, batch: batch
                )
            except ValueError:
                yield comm.barrier()
                return "caught"

        assert run(prog, 3).returns == ["caught"] * 3
