"""Tests for repro.core.keys: Morton key arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    KEY_BITS,
    MAX_LEVEL,
    ROOT_KEY,
    BoundingBox,
    ancestor_at_level,
    cell_center_and_size,
    child_keys,
    key_level,
    key_level_2d,
    keys_from_positions,
    keys_from_positions_2d,
    octant_of,
    parent_key,
    positions_from_keys,
)

UNIT_BOX = BoundingBox(np.zeros(3), 1.0)


class TestBoundingBox:
    def test_from_points_contains_all(self):
        rng = np.random.default_rng(1)
        pts = rng.standard_normal((100, 3)) * 5
        box = BoundingBox.from_points(pts)
        assert np.all(pts >= box.corner)
        assert np.all(pts < box.corner + box.size)

    def test_degenerate_single_point(self):
        box = BoundingBox.from_points(np.array([[1.0, 2.0, 3.0]]))
        assert box.size > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            BoundingBox(np.zeros(3), 0.0)
        with pytest.raises(ValueError):
            BoundingBox.from_points(np.empty((0, 3)))


class TestKeyGeneration:
    def test_keys_have_placeholder_bit(self):
        rng = np.random.default_rng(2)
        keys = keys_from_positions(rng.random((50, 3)), UNIT_BOX)
        assert np.all(keys >> np.uint64(63) == 1)

    def test_particle_keys_are_max_level(self):
        rng = np.random.default_rng(3)
        keys = keys_from_positions(rng.random((50, 3)), UNIT_BOX)
        assert np.all(key_level(keys) == MAX_LEVEL)

    def test_origin_maps_to_min_key(self):
        keys = keys_from_positions(np.array([[0.0, 0.0, 0.0]]), UNIT_BOX)
        assert keys[0] == np.uint64(1 << 63)

    def test_distinct_positions_distinct_keys(self):
        # Well-separated points must never collide.
        grid = np.stack(np.meshgrid(*[np.linspace(0.1, 0.9, 4)] * 3), axis=-1).reshape(-1, 3)
        keys = keys_from_positions(grid, UNIT_BOX)
        assert len(np.unique(keys)) == len(keys)

    def test_out_of_box_rejected(self):
        with pytest.raises(ValueError):
            keys_from_positions(np.array([[2.0, 0.0, 0.0]]), UNIT_BOX)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            keys_from_positions(np.zeros((5, 2)), UNIT_BOX)

    def test_round_trip_within_one_cell(self):
        rng = np.random.default_rng(4)
        pos = rng.random((200, 3))
        keys = keys_from_positions(pos, UNIT_BOX)
        back = positions_from_keys(keys, UNIT_BOX)
        cell = 1.0 / (1 << KEY_BITS)
        assert np.all(np.abs(back - pos) <= cell + 1e-12)

    @given(st.lists(st.tuples(*[st.floats(0.0, 0.999999)] * 3), min_size=1, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_morton_order_matches_lexicographic_bit_order(self, coords):
        """Keys sort identically to interleaved integer coordinates."""
        pos = np.array(coords)
        keys = keys_from_positions(pos, UNIT_BOX)
        # Re-derive via slow scalar interleave.
        q = np.floor(pos * (1 << KEY_BITS)).astype(np.int64)
        slow = []
        for x, y, z in q:
            k = 1 << 63
            for b in range(KEY_BITS):
                k |= ((int(x) >> b) & 1) << (3 * b)
                k |= ((int(y) >> b) & 1) << (3 * b + 1)
                k |= ((int(z) >> b) & 1) << (3 * b + 2)
            slow.append(k)
        assert keys.tolist() == slow


class TestKeyArithmetic:
    def test_root_level_zero(self):
        assert key_level(ROOT_KEY) == 0

    def test_parent_of_child_is_self(self):
        key = 0b1_010_111_001  # level-3 cell
        for child in child_keys(key):
            assert parent_key(int(child)) == key

    def test_child_octants(self):
        kids = child_keys(ROOT_KEY)
        assert octant_of(kids).tolist() == list(range(8))

    def test_parent_of_root_rejected(self):
        with pytest.raises(ValueError):
            parent_key(ROOT_KEY)

    def test_vector_parent(self):
        keys = np.array([0b1010, 0b1111], dtype=np.uint64)
        assert parent_key(keys).tolist() == [1, 1]

    def test_ancestor_at_level(self):
        key = 0b1_010_111_001
        assert ancestor_at_level(key, 0) == ROOT_KEY
        assert ancestor_at_level(key, 2) == 0b1_010_111
        assert ancestor_at_level(key, 3) == key
        with pytest.raises(ValueError):
            ancestor_at_level(key, 4)

    def test_level_vectorized_matches_scalar(self):
        keys = [1, 0b1101, 0b1101101, 1 << 63, (1 << 63) | 12345]
        arr = np.array(keys, dtype=np.uint64)
        assert key_level(arr).tolist() == [key_level(k) for k in keys]

    def test_invalid_key_rejected(self):
        with pytest.raises(ValueError):
            key_level(0)

    def test_cannot_descend_below_max_level(self):
        deep = (1 << 63) | 5
        with pytest.raises(ValueError):
            child_keys(deep)

    @given(st.integers(0, 7), st.integers(0, 7), st.integers(0, 7))
    def test_parent_child_round_trip(self, a, b, c):
        key = ((ROOT_KEY * 8 + a) * 8 + b) * 8 + c
        assert parent_key(key) == (ROOT_KEY * 8 + a) * 8 + b
        assert octant_of(key) == c
        assert key_level(key) == 3


class TestCellGeometry:
    def test_root_cell_is_whole_box(self):
        center, size = cell_center_and_size(ROOT_KEY, UNIT_BOX)
        assert size == 1.0
        assert np.allclose(center, [0.5, 0.5, 0.5])

    def test_first_octant_cell(self):
        center, size = cell_center_and_size(0b1000, UNIT_BOX)
        assert size == 0.5
        assert np.allclose(center, [0.25, 0.25, 0.25])

    def test_last_octant_cell(self):
        center, size = cell_center_and_size(0b1111, UNIT_BOX)
        assert np.allclose(center, [0.75, 0.75, 0.75])

    def test_key_contains_its_positions(self):
        rng = np.random.default_rng(5)
        pos = rng.random((20, 3))
        keys = keys_from_positions(pos, UNIT_BOX)
        for p, k in zip(pos, keys):
            anc = ancestor_at_level(int(k), 4)
            center, size = cell_center_and_size(anc, UNIT_BOX)
            assert np.all(np.abs(p - center) <= size / 2 + 1e-12)


class TestKeys2D:
    def test_levels(self):
        rng = np.random.default_rng(6)
        pos = rng.random((30, 2))
        keys = keys_from_positions_2d(pos, BoundingBox(np.zeros(2), 1.0))
        assert np.all(key_level_2d(keys) == 31)

    def test_locality_of_z_order(self):
        # Sorting along the curve keeps neighbors close: the mean jump
        # between consecutive curve points must be far below a random
        # shuffle's.
        rng = np.random.default_rng(7)
        pos = rng.random((500, 2))
        keys = keys_from_positions_2d(pos, BoundingBox(np.zeros(2), 1.0))
        order = np.argsort(keys)
        curve = pos[order]
        curve_jump = np.linalg.norm(np.diff(curve, axis=0), axis=1).mean()
        shuffled_jump = np.linalg.norm(np.diff(pos, axis=0), axis=1).mean()
        assert curve_jump < 0.4 * shuffled_jump

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            keys_from_positions_2d(np.zeros((5, 3)))
