"""Property suite for the real-core pool and the multiprocess backend.

Hypothesis drives the invariants the multiprocess execution layer
promises:

* pool results are a pure function of the task list — invariant under
  worker count (1/2/4) and task-order permutation, with errors as data
  (an exception becomes an ``"error"`` :class:`TaskResult`, never an
  exception out of the pool);
* the ``multiprocess`` kernel backend is **bit-identical** to its
  serial base no matter the worker count, shard granularity
  (``min_pairs``), or ``pair_chunk`` size;
* a worker killed with SIGKILL surfaces as an error entry for the task
  that killed it while every other task's result is delivered intact —
  chaos costs a shard, never the merged result.
"""

import os
import signal

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_tree, compute_forces
from repro.core.procpool import MultiprocessBackend, ProcPool, run_tasks

# Pool startup dominates example runtime: keep the example counts low
# and the pools shared across examples.
POOL_SETTINGS = settings(max_examples=8, deadline=None)


def _square_mod(x: int) -> int:
    return (x * x) % 7919


def _maybe_raise(x: int) -> int:
    if x % 5 == 3:
        raise ValueError(f"poison {x}")
    return 2 * x


def _kill_if(x: int) -> int:
    if x == 3:
        os.kill(os.getpid(), signal.SIGKILL)
    return 10 * x


@pytest.fixture(scope="module")
def pools():
    ps = {w: ProcPool(workers=w) for w in (1, 2, 4)}
    yield ps
    for p in ps.values():
        p.shutdown()


@pytest.fixture(scope="module")
def mp_backends():
    bs = {w: MultiprocessBackend(workers=w, min_pairs=0) for w in (1, 2, 4)}
    yield bs
    for b in bs.values():
        b.close()


class TestPoolInvariants:
    @POOL_SETTINGS
    @given(xs=st.lists(st.integers(0, 10_000), max_size=12))
    def test_worker_count_invariance(self, pools, xs):
        args = [(x,) for x in xs]
        expected = [_square_mod(x) for x in xs]
        for w, pool in pools.items():
            results = pool.map(_square_mod, args)
            assert [r.ok for r in results] == [True] * len(xs), w
            assert [r.value for r in results] == expected, w

    @POOL_SETTINGS
    @given(
        xs=st.lists(st.integers(0, 1000), min_size=2, max_size=10),
        seed=st.integers(0, 2**31),
    )
    def test_order_permutation(self, pools, xs, seed):
        perm = np.random.default_rng(seed).permutation(len(xs))
        base = pools[2].map(_square_mod, [(x,) for x in xs])
        permuted = pools[2].map(_square_mod, [(xs[i],) for i in perm])
        assert [r.value for r in permuted] == [base[i].value for i in perm]

    @POOL_SETTINGS
    @given(xs=st.lists(st.integers(0, 100), max_size=12))
    def test_errors_are_data(self, pools, xs):
        results = pools[2].map(_maybe_raise, [(x,) for x in xs])
        for x, r in zip(xs, results):
            if x % 5 == 3:
                assert not r.ok
                assert "poison" in r.error
            else:
                assert r.ok
                assert r.value == 2 * x

    def test_imap_unordered_covers_every_task(self, pools):
        args = [(x,) for x in range(9)]
        seen = {r.index: r.value for r in pools[4].imap_unordered(_square_mod, args)}
        assert seen == {i: _square_mod(i) for i in range(9)}

    def test_run_tasks_serial_matches_pool(self):
        args = [(x,) for x in range(7)]
        serial = run_tasks(_square_mod, args, workers=1)
        pooled = run_tasks(_square_mod, args, workers=3)
        assert [r.value for r in serial] == [r.value for r in pooled]


class TestMultiprocessBackendBitIdentity:
    """Sharded kernels == serial base, bit for bit, however sliced."""

    @staticmethod
    def _forces(n, seed, backend, pair_chunk=1 << 18):
        rng = np.random.default_rng(seed)
        pos = rng.random((n, 3))
        tree = build_tree(pos, np.full(n, 1.0 / n), bucket_size=8)
        return compute_forces(tree, eps=0.01, backend=backend, pair_chunk=pair_chunk)

    @POOL_SETTINGS
    @given(n=st.integers(10, 150), seed=st.integers(0, 2**31))
    def test_worker_count_invariance(self, mp_backends, n, seed):
        ref = self._forces(n, seed, "numpy")
        for w, backend in mp_backends.items():
            got = self._forces(n, seed, backend)
            assert got.counts == ref.counts, w
            assert np.array_equal(got.accelerations, ref.accelerations), w
            assert np.array_equal(got.potentials, ref.potentials), w

    @POOL_SETTINGS
    @given(
        n=st.integers(20, 120),
        seed=st.integers(0, 2**31),
        pair_chunk=st.sampled_from([1, 17, 4096]),
    )
    def test_pair_chunk_invariance(self, mp_backends, n, seed, pair_chunk):
        ref = self._forces(n, seed, "numpy")
        got = self._forces(n, seed, mp_backends[2], pair_chunk=pair_chunk)
        assert got.counts == ref.counts
        assert np.array_equal(got.accelerations, ref.accelerations)

    @POOL_SETTINGS
    @given(n=st.integers(20, 120), seed=st.integers(0, 2**31),
           min_pairs=st.sampled_from([0, 100, 1 << 30]))
    def test_shard_threshold_invariance(self, n, seed, min_pairs):
        backend = MultiprocessBackend(workers=2, min_pairs=min_pairs)
        try:
            ref = self._forces(n, seed, "numpy")
            got = self._forces(n, seed, backend)
            assert np.array_equal(got.accelerations, ref.accelerations)
            assert np.array_equal(got.potentials, ref.potentials)
        finally:
            backend.close()


class TestWorkerDeath:
    def test_sigkill_is_an_error_entry_not_a_crash(self):
        with ProcPool(workers=2) as pool:
            results = pool.map(_kill_if, [(x,) for x in range(6)], retries=1)
        assert len(results) == 6
        dead = results[3]
        assert not dead.ok
        assert "worker died" in dead.error
        for x in (0, 1, 2, 4, 5):
            assert results[x].ok, results[x]
            assert results[x].value == 10 * x

    def test_sigkill_does_not_corrupt_backend_result(self):
        # Kill workers mid-lifetime: the backend's pool goes through the
        # broken→rebuild path and the forces computed afterwards must
        # still be bit-identical to the serial base.
        backend = MultiprocessBackend(workers=2, min_pairs=0)
        try:
            pool = backend._ensure_pool()
            list(pool.imap_unordered(_kill_if, [(3,), (3,)], retries=0))
            ref = TestMultiprocessBackendBitIdentity._forces(80, 5, "numpy")
            got = TestMultiprocessBackendBitIdentity._forces(80, 5, backend)
            assert np.array_equal(got.accelerations, ref.accelerations)
            assert np.array_equal(got.potentials, ref.potentials)
        finally:
            backend.close()
