"""Tests for the fleet HTML report (repro.obs.report fleet section).

Edge cases first — empty/single-point/flat sparklines, HTML escaping
of hostile bench names, zero wait bars, gate-cell states — then one
golden-file test: ``fleet_report`` is deterministic for fixed inputs
(no timestamps, no environment), so the rendered page for a synthetic
ledger is pinned byte-for-byte under ``tests/golden/``.
"""

import os

from repro.obs.history import DEFAULT_FLEET_GATES, compare_history_multi
from repro.obs.report import (
    _gate_cell,
    _wait_bar,
    _wait_causes,
    fleet_report,
    svg_sparkline,
    write_fleet_report,
)

GOLDEN = os.path.join(os.path.dirname(os.path.abspath(__file__)), "golden")


class TestSparkline:
    def test_empty_series_renders_placeholder(self):
        out = svg_sparkline([])
        assert "no history" in out
        assert "<svg" not in out

    def test_single_point_is_a_dot_not_a_line(self):
        out = svg_sparkline([3.0], label="solo")
        assert "<circle" in out
        assert "<polyline" not in out
        # Centered: x = width/2 for the lone point.
        assert "cx='65.00'" in out

    def test_flat_series_draws_midband_line(self):
        out = svg_sparkline([2.0, 2.0, 2.0])
        assert "<polyline" in out
        # Zero range must not divide by zero: every y sits mid-band.
        assert out.count(",13.00") == 3

    def test_label_and_values_are_escaped_into_title(self):
        out = svg_sparkline([1.0, 2.0], label="<b>evil</b>")
        assert "<b>" not in out
        assert "&lt;b&gt;evil&lt;/b&gt;" in out
        assert "1, 2" in out  # series tooltip

    def test_trend_polyline_is_monotone_for_monotone_data(self):
        out = svg_sparkline([1.0, 2.0, 3.0])
        assert "<polyline" in out
        assert "<circle" in out  # latest point marked


class TestWaitBar:
    def test_zero_total_renders_placeholder(self):
        assert "no blocked time" in _wait_bar({})
        assert "no blocked time" in _wait_bar({"transfer": 0.0})

    def test_segments_carry_cause_and_share(self):
        out = _wait_bar({"late-sender": 3.0, "transfer": 1.0})
        assert out.count("<rect") == 2
        assert "late-sender: 3s (75%)" in out
        assert "transfer: 1s (25%)" in out

    def test_wait_causes_extraction(self):
        record = {"counters": {
            "wait.late-sender_s": 1.5, "wait.transfer_s": 0.5, "other": 9.0,
        }}
        assert _wait_causes(record) == {"late-sender": 1.5, "transfer": 0.5}


class TestGateCell:
    def test_regression_is_red_and_names_metrics(self):
        cell = _gate_cell({"seconds": "ok", "virtual_seconds": "regression"})
        assert "bad" in cell and "FAIL" in cell and "virtual_seconds" in cell

    def test_all_ok_is_green(self):
        assert "OK" in _gate_cell({"seconds": "ok", "virtual_seconds": "skipped"})

    def test_never_gated_is_muted(self):
        assert "no baseline" in _gate_cell({})
        assert "no baseline" in _gate_cell({"seconds": "skipped"})


def _row(name, *, status="computed", seconds=1.0, virtual=10.0, counters=None,
         error=None, tags=("fixture",)):
    stamp = {
        "id": "deadbeef" * 4, "mode": "smoke", "bench": name,
        "status": status, "shard_seconds": seconds, "tags": list(tags),
    }
    if error:
        stamp["error"] = error
    return {
        "schema_version": 1, "name": name, "params": {"smoke": True},
        "seconds": seconds, "virtual_seconds": virtual,
        "counters": dict(counters or {}), "git_rev": "0000000",
        "host": "golden-host", "notes": "", "fleet": stamp,
    }


def _golden_inputs():
    """Fixed synthetic ledger + history + gate verdict (no wall time,
    no host, no timestamps — rendering must be byte-stable)."""
    history = []
    for i in range(4):
        history.append({
            "name": "alpha", "seconds": 1.0 + 0.05 * i, "virtual_seconds": 10.0,
            "counters": {"cellcache.hit_rate": 0.90},
        })
        history.append({
            "name": "beta_smoke", "seconds": 0.5, "virtual_seconds": 5.0,
            "counters": {},
        })
    rows = [
        _row("alpha", seconds=1.1, virtual=10.0, counters={
            "cellcache.hit_rate": 0.91,
            "wait.late-sender_s": 1.5, "wait.transfer_s": 0.5,
        }),
        # 3x slower virtual time: trips the default virtual_seconds gate.
        _row("beta_smoke", status="computed", seconds=0.5, virtual=15.0),
        _row("broken", status="failed", seconds=0.0, virtual=0.0,
             error="RuntimeError: boom"),
        _row("<script>alert(1)</script>", seconds=0.2, virtual=1.0),
    ]
    live = [r for r in rows if r["fleet"]["status"] != "failed"]
    multi = compare_history_multi(
        history + live, DEFAULT_FLEET_GATES, window=5,
    )
    return rows, history, multi


class TestFleetReport:
    def test_hostile_bench_names_are_escaped(self):
        rows, history, multi = _golden_inputs()
        doc = fleet_report(rows, history=history, multi=multi)
        assert "<script>alert(1)</script>" not in doc
        assert "&lt;script&gt;alert(1)&lt;/script&gt;" in doc

    def test_failure_and_gate_verdicts_render(self):
        rows, history, multi = _golden_inputs()
        assert not multi.ok  # beta_smoke's virtual_seconds tripled
        doc = fleet_report(rows, history=history, multi=multi)
        assert "1 bench(es) FAILED" in doc
        assert "FLEET GATE REGRESSION" in doc
        assert "FAIL (virtual_seconds)" in doc       # beta's gate cell
        assert "no baseline" in doc                  # never-gated benches
        assert "<span class='bad'>failed</span>" in doc

    def test_wait_section_only_for_benches_with_wait_counters(self):
        rows, history, multi = _golden_inputs()
        doc = fleet_report(rows, history=history, multi=multi)
        assert "<h2>Wait states</h2>" in doc
        assert "late-sender" in doc
        bare = fleet_report([_row("plain")])
        assert "<h2>Wait states</h2>" not in bare

    def test_empty_ledger_renders(self):
        doc = fleet_report([])
        assert "0 bench(es)" in doc
        assert "all benches completed" in doc

    def test_no_multi_renders_muted_gate_column(self):
        doc = fleet_report([_row("alpha")])
        assert "<h2>Multi-metric gate</h2>" not in doc

    def test_write_fleet_report_roundtrip(self, tmp_path):
        rows, history, multi = _golden_inputs()
        path = write_fleet_report(
            str(tmp_path / "r.html"), rows, history=history, multi=multi,
        )
        with open(path) as fh:
            assert fh.read() == fleet_report(rows, history=history, multi=multi)

    def test_golden_file(self):
        """Pin the rendered page byte-for-byte.

        Regenerate after an intentional rendering change with:
        ``PYTHONPATH=src:tests python -c "import test_obs_report_fleet as t;
        t.regenerate_golden()"``
        """
        rows, history, multi = _golden_inputs()
        doc = fleet_report(rows, history=history, multi=multi,
                           title="golden fleet")
        with open(os.path.join(GOLDEN, "fleet_report.html")) as fh:
            assert doc == fh.read()


def regenerate_golden():
    rows, history, multi = _golden_inputs()
    doc = fleet_report(rows, history=history, multi=multi, title="golden fleet")
    path = os.path.join(GOLDEN, "fleet_report.html")
    with open(path, "w") as fh:
        fh.write(doc)
    print(f"wrote {path}")
