"""Tests for repro.obs.analysis: wait states, critical path, attribution.

The hand-built scenarios have answers worked out on paper (ISSUE 3):
a 2-rank late-sender / late-receiver pair, a 4-rank collective with one
deliberate straggler, and a critical-path fixture whose expected
segment list is written out by hand.  The golden 4-rank scenarios then
pin the two load-bearing identities on real engine runs: the critical
path partitions [0, elapsed] exactly, and every blocked second is
classified (coverage 1.0).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    WAIT_CAUSES,
    PathSegment,
    Span,
    attribute_phases,
    classify_waits,
    critical_path,
    critical_path_summary,
    load_imbalance,
    wait_summary,
)
from repro.simmpi import Comm, SpaceSimulatorCost, UniformCost, run

from tests.test_golden_trace import _simmpi_scenario, _treecode_scenario

RENDEZVOUS = 100_000  # > the engine's 64 KiB eager threshold


def _blocked(spans):
    return [s for s in spans if s.cat in ("blocked", "collective")]


class TestWaitClassification:
    def test_two_rank_late_sender(self):
        # Rank 1 posts its recv at t=0; rank 0 computes 1s before
        # sending.  All of rank 1's wait is the sender's fault.
        def program(comm: Comm):
            if comm.rank == 0:
                yield comm.elapse(1.0)
                yield comm.send(b"x" * RENDEZVOUS, dest=1)
            else:
                yield comm.recv(source=0)

        result = run(program, 2, UniformCost(latency_s=1e-5, mbytes_s=100.0))
        states = classify_waits(result.observer)
        recv_waits = [ws for ws in states if ws.span.track == 1]
        assert recv_waits, "receiver must have a blocked span"
        assert all(ws.cause == "late-sender" for ws in recv_waits)
        summary = wait_summary(result.observer)
        assert summary["coverage"] == 1.0
        assert summary["by_cause"]["late-sender"] > 0.99  # ~1s of waiting

    def test_two_rank_late_receiver(self):
        # Rendezvous send posted at t=0; the receiver shows up 1s late,
        # so the *sender* stalls on the tardy receiver.
        def program(comm: Comm):
            if comm.rank == 0:
                yield comm.send(b"x" * RENDEZVOUS, dest=1)
            else:
                yield comm.elapse(1.0)
                yield comm.recv(source=0)

        result = run(program, 2, UniformCost(latency_s=1e-5, mbytes_s=100.0))
        states = classify_waits(result.observer)
        send_waits = [ws for ws in states if ws.span.track == 0]
        assert send_waits
        assert all(ws.cause == "late-receiver" for ws in send_waits)
        assert wait_summary(result.observer)["coverage"] == 1.0

    def test_two_rank_transfer(self):
        # Both sides post at t=0: any remaining wait is wire time.
        def program(comm: Comm):
            if comm.rank == 0:
                yield comm.send(b"x" * RENDEZVOUS, dest=1)
            else:
                yield comm.recv(source=0)

        result = run(program, 2, UniformCost(latency_s=1e-5, mbytes_s=100.0))
        states = classify_waits(result.observer)
        assert states
        assert {ws.cause for ws in states} == {"transfer"}

    def test_four_rank_collective_imbalance(self):
        # Ranks 0-2 hit the barrier at t=0; rank 3 arrives 1s late.
        # The early ranks' waits are dominated by straggler time.
        def program(comm: Comm):
            if comm.rank == 3:
                yield comm.elapse(1.0)
            yield comm.barrier()

        result = run(program, 4, UniformCost(latency_s=1e-5, mbytes_s=100.0))
        states = classify_waits(result.observer)
        early = [ws for ws in states if ws.span.track != 3]
        assert len(early) == 3
        for ws in early:
            assert ws.cause == "collective-imbalance"
            assert ws.imbalance_s == pytest.approx(1.0, rel=1e-9)
            assert ws.span.args_dict["last_rank"] == 3
        summary = wait_summary(result.observer)
        assert summary["coverage"] == 1.0
        assert summary["collective_imbalance_s"] == pytest.approx(3.0, rel=1e-6)

    def test_every_cause_is_in_the_vocabulary(self):
        def program(comm: Comm):
            peer = (comm.rank + 1) % comm.size
            req = yield comm.isend(b"y" * RENDEZVOUS, dest=peer)
            yield comm.recv(source=(comm.rank - 1) % comm.size)
            yield comm.wait(req)
            yield comm.allreduce(comm.rank)

        result = run(program, 4, SpaceSimulatorCost())
        for ws in classify_waits(result.observer):
            assert ws.cause in WAIT_CAUSES
            assert ws.seconds == pytest.approx(ws.span.duration)

    def test_unclassified_without_metadata(self):
        bare = Span("mystery", 0.0, 1.0, track=0, cat="blocked")
        (ws,) = classify_waits([bare])
        assert ws.cause == "unclassified"
        assert wait_summary([bare])["coverage"] == 0.0

    def test_empty_summary_is_all_zero(self):
        summary = wait_summary([])
        assert summary["total_blocked_s"] == 0.0
        assert summary["coverage"] == 1.0
        assert summary["n_waits"] == 0


class TestCriticalPathFixture:
    def test_hand_written_path(self):
        # Rank 1 computes "produce" for 1s, its message releases rank 0
        # at t=1.5 after a recv posted at t=0; rank 0 then computes
        # "consume" until t=2.  Expected path, written out by hand:
        #   rank 1 compute [0.0, 1.0]   (the sender's work)
        #   rank 0 wait    [1.0, 1.5]   (late-sender tail of the recv)
        #   rank 0 compute [1.5, 2.0]   (the consumer's work)
        spans = [
            Span("produce", 0.0, 1.0, track=1, cat="compute"),
            Span(
                "recv from 1",
                0.0,
                1.5,
                track=0,
                cat="blocked",
                args=(("peer", 1), ("req_kind", "recv"),
                      ("t_peer", 1.0), ("t_self", 0.0)),
            ),
            Span("consume", 1.5, 2.0, track=0, cat="compute"),
        ]
        path = critical_path(spans, elapsed=2.0)
        assert path == [
            PathSegment(1, 0.0, 1.0, "compute", "produce"),
            PathSegment(0, 1.0, 1.5, "wait", "late-sender (peer 1)"),
            PathSegment(0, 1.5, 2.0, "compute", "consume"),
        ]
        summary = critical_path_summary(path)
        assert summary["length_s"] == pytest.approx(2.0, abs=1e-12)
        assert summary["rank_switches"] == 1

    def test_collective_hop_to_last_arriver(self):
        # Rank 0 waits in a barrier from t=0; rank 1 (the straggler)
        # computes until t=1 and the barrier completes at t=1.2.  The
        # path must hop from rank 0's wait to rank 1 at t_last=1.
        coll_args = (("coll", 0), ("kind", "barrier"), ("last_rank", 1),
                     ("t_arrive", 0.0), ("t_last", 1.0), ("t_op", 0.2),
                     ("wait", "collective"))
        spans = [
            Span("slow", 0.0, 1.0, track=1, cat="compute"),
            Span("collective #0 (barrier)", 0.0, 1.2, track=0,
                 cat="collective", args=coll_args),
            Span("after", 1.2, 1.5, track=0, cat="compute"),
        ]
        path = critical_path(spans, elapsed=1.5)
        assert path == [
            PathSegment(1, 0.0, 1.0, "compute", "slow"),
            PathSegment(0, 1.0, 1.2, "collective", "collective #0 (barrier)"),
            PathSegment(0, 1.2, 1.5, "compute", "after"),
        ]

    def test_gap_becomes_overhead(self):
        spans = [
            Span("a", 0.0, 1.0, track=0, cat="compute"),
            Span("b", 1.5, 2.0, track=0, cat="compute"),
        ]
        path = critical_path(spans, elapsed=2.0)
        kinds = [(seg.kind, seg.name) for seg in path]
        assert ("overhead", "untracked") in kinds
        assert sum(seg.duration for seg in path) == pytest.approx(2.0, abs=1e-12)

    def test_empty_and_zero_elapsed(self):
        assert critical_path([]) == []
        assert critical_path([Span("z", 0.0, 0.0)], elapsed=0.0) == []
        # Elapsed time with no spans at all (a run that was pure eager
        # injection gaps) is one untracked-overhead segment, so the
        # partition identity still holds.
        assert critical_path([], elapsed=0.5) == [
            PathSegment(0, 0.0, 0.5, "overhead", "untracked")
        ]


class TestCriticalPathIdentity:
    """On real engine runs, the path partitions [0, elapsed] exactly."""

    @pytest.fixture(scope="class")
    def runs(self):
        return [_simmpi_scenario(), _treecode_scenario()]

    def test_durations_sum_to_elapsed(self, runs):
        for sim in runs:
            path = critical_path(sim.observer, sim.elapsed)
            total = sum(seg.duration for seg in path)
            assert total == pytest.approx(sim.elapsed, abs=1e-9)

    def test_segments_are_contiguous(self, runs):
        for sim in runs:
            path = critical_path(sim.observer, sim.elapsed)
            assert path[0].t_start == 0.0
            assert path[-1].t_end == pytest.approx(sim.elapsed, abs=1e-12)
            for a, b in zip(path, path[1:]):
                assert a.t_end == pytest.approx(b.t_start, abs=1e-12)

    def test_blocked_time_fully_classified(self, runs):
        for sim in runs:
            assert wait_summary(sim.observer)["coverage"] == 1.0


class TestCriticalPathProperty:
    @given(
        st.integers(min_value=1, max_value=5),
        st.lists(
            st.tuples(
                st.sampled_from(["compute", "barrier", "allreduce", "sendrecv"]),
                st.floats(min_value=1e-6, max_value=0.1, allow_nan=False),
            ),
            min_size=1,
            max_size=8,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_path_length_le_elapsed_le_total_busy(self, n_ranks, steps):
        # ISSUE 3 satellite: critical-path length <= elapsed <= sum of
        # rank busy times (here the identity is exact on the left, and
        # the right holds because some rank is always busy or blocked).
        def program(comm: Comm):
            for kind, amount in steps:
                if kind == "compute":
                    yield comm.elapse(amount)
                elif kind == "barrier":
                    yield comm.barrier()
                elif kind == "allreduce":
                    yield comm.allreduce(comm.rank)
                elif kind == "sendrecv" and comm.size > 1:
                    req = yield comm.isend(b"x" * 64, dest=(comm.rank + 1) % comm.size)
                    yield comm.recv(source=(comm.rank - 1) % comm.size)
                    yield comm.wait(req)

        result = run(program, n_ranks, UniformCost(latency_s=1e-5, mbytes_s=100.0))
        path = critical_path(result.observer, result.elapsed)
        length = sum(seg.duration for seg in path)
        busy = sum(s.duration for s in result.observer.spans)
        overhead = sum(seg.duration for seg in path if seg.kind == "overhead")
        assert length <= result.elapsed + 1e-9
        # Every elapsed second is some rank's recorded work or an
        # explicit overhead gap on the path (eager injection, in-flight
        # transfer of an already-matched message).
        assert result.elapsed <= busy + overhead + 1e-9
        # ...and on this engine the partition identity is exact:
        assert length == pytest.approx(result.elapsed, abs=1e-9)
        for ws in classify_waits(result.observer):
            assert ws.cause != "unclassified"


class TestLoadImbalance:
    def test_balanced_run(self):
        def program(comm: Comm):
            yield comm.elapse(0.5)
            yield comm.barrier()

        result = run(program, 4, UniformCost())
        stats = load_imbalance(result.observer, result.elapsed)
        assert stats["n_ranks"] == 4
        assert stats["imbalance"] == pytest.approx(0.0, abs=1e-9)
        for row in stats["ranks"]:
            assert row["compute_s"] == pytest.approx(0.5, rel=1e-9)

    def test_single_straggler_dominates(self):
        def program(comm: Comm):
            yield comm.elapse(1.0 if comm.rank == 0 else 0.25)
            yield comm.barrier()

        result = run(program, 4, UniformCost())
        stats = load_imbalance(result.observer, result.elapsed)
        # mean compute = (1.0 + 3*0.25)/4 = 0.4375; peak/mean - 1
        assert stats["imbalance"] == pytest.approx(1.0 / 0.4375 - 1.0, rel=1e-6)
        assert stats["blocked_frac"] > 0.4  # three ranks waited ~0.75s

    def test_empty_source_is_all_zero(self):
        stats = load_imbalance([], elapsed=0.0, n_tracks=2)
        assert stats["imbalance"] == 0.0
        assert stats["blocked_frac"] == 0.0
        for row in stats["ranks"]:
            assert row["compute_frac"] == 0.0 and row["idle_s"] == 0.0


class TestAttribution:
    def test_seconds_predictions(self):
        spans = [
            Span("force", 0.0, 1.0, track=0, cat="compute"),
            Span("force", 1.0, 2.2, track=0, cat="compute"),
            Span("sort", 2.2, 2.3, track=0, cat="compute"),
        ]
        rows = attribute_phases(spans, {"force": 1.1, "sort": 0.5}, threshold=0.25)
        by_phase = {r["phase"]: r for r in rows}
        assert by_phase["force"]["measured_mean_s"] == pytest.approx(1.1)
        assert by_phase["force"]["diverges"] is False
        assert by_phase["sort"]["diverges"] is True  # 0.1 vs 0.5
        assert by_phase["sort"]["ratio"] == pytest.approx(0.2)

    def test_unmodeled_and_unmeasured_phases_visible(self):
        spans = [Span("mystery", 0.0, 1.0, track=0, cat="compute")]
        rows = attribute_phases(spans, {"ghost": 2.0})
        by_phase = {r["phase"]: r for r in rows}
        assert by_phase["mystery"]["predicted_s"] is None
        assert by_phase["mystery"]["diverges"] is None
        assert by_phase["ghost"]["count"] == 0
        assert by_phase["ghost"]["diverges"] is True  # measured 0 vs 2s

    def test_workload_predictions_through_perf_model(self):
        from repro.machine.node import SPACE_SIMULATOR_NODE
        from repro.machine.perfmodel import PerfModel, Workload

        model = PerfModel(SPACE_SIMULATOR_NODE)
        wl = Workload(flops=1e9)
        t = model.time_s(wl)
        spans = [Span("kernel", 0.0, t, track=0, cat="compute")]
        rows = attribute_phases(
            spans, {"kernel": {"flops": 1e9}}, model=model, threshold=0.25
        )
        (row,) = rows
        assert row["predicted_s"] == pytest.approx(t, rel=1e-12)
        assert row["ratio"] == pytest.approx(1.0, rel=1e-9)
        assert row["diverges"] is False

    def test_waits_excluded_from_phase_totals(self):
        spans = [
            Span("force", 0.0, 1.0, track=0, cat="compute"),
            Span("force", 0.0, 9.0, track=1, cat="blocked"),
        ]
        (row,) = attribute_phases(spans, {})
        assert row["measured_total_s"] == pytest.approx(1.0)
