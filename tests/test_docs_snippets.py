"""Every fenced ``python`` and ``console`` snippet in the user-facing
docs executes, verbatim and in document order.

Each document runs in its own sandbox directory seeded with symlinks
into the repository (``src`` as a directory symlink for ``PYTHONPATH``;
``benchmarks`` as a real directory of per-file symlinks so relative
paths like ``../baseline.jsonl`` stay inside the sandbox).  ``python``
blocks share one namespace per document and ``console`` blocks run
``$ ``-prefixed lines through bash with a ``python`` shim on ``PATH``
— so a reader pasting the docs top to bottom gets exactly what CI ran.
``bash`` and ``text`` fences are display-only by convention.
"""

import os
import re
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
DOCS = [REPO / "docs" / "USER_GUIDE.md", REPO / "docs" / "COOKBOOK.md"]

FENCE_RE = re.compile(r"^```(\w*)\s*$")
HEREDOC_RE = re.compile(r"<<\s*'?(\w+)'?")


@dataclass
class Block:
    language: str
    text: str
    line: int  # 1-based line of the opening fence, for failure messages


def extract_blocks(path: Path) -> list[Block]:
    blocks, language, start, body = [], None, 0, []
    for i, line in enumerate(path.read_text().splitlines(), start=1):
        m = FENCE_RE.match(line)
        if m and language is None:
            language, start, body = m.group(1) or "text", i, []
        elif line.strip() == "```" and language is not None:
            blocks.append(Block(language, "\n".join(body), start))
            language = None
        elif language is not None:
            body.append(line)
    assert language is None, f"{path.name}: unterminated fence at line {start}"
    return blocks


def console_commands(block: Block) -> list[str]:
    """The ``$ ``-prefixed commands of a console block, with heredoc
    bodies attached; other lines are illustrative output."""
    commands, lines = [], block.text.splitlines()
    i = 0
    while i < len(lines):
        line = lines[i]
        i += 1
        if not line.startswith("$ "):
            continue
        command = line[2:]
        heredoc = HEREDOC_RE.search(command)
        if heredoc:
            parts = [command]
            while i < len(lines):
                parts.append(lines[i])
                i += 1
                if parts[-1].strip() == heredoc.group(1):
                    break
            command = "\n".join(parts)
        commands.append(command)
    return commands


def make_sandbox(root: Path) -> Path:
    """A scratch tree the snippets can dirty freely.

    ``src`` is a directory symlink (imports only, never written).
    ``benchmarks`` is a *real* directory of file symlinks: a process
    that ``cd``-s into it keeps its cwd inside the sandbox, so
    relative output paths cannot escape into the repository.
    """
    sandbox = root / "sandbox"
    sandbox.mkdir()
    (sandbox / "src").symlink_to(REPO / "src")
    bench = sandbox / "benchmarks"
    bench.mkdir()
    for entry in (REPO / "benchmarks").iterdir():
        if entry.is_file():
            (bench / entry.name).symlink_to(entry)
    shim = sandbox / ".bin"
    shim.mkdir()
    for alias in ("python", "python3"):
        (shim / alias).symlink_to(sys.executable)
    return sandbox


def sandbox_env(sandbox: Path) -> dict:
    env = dict(os.environ)
    env["PATH"] = str(sandbox / ".bin") + os.pathsep + env.get("PATH", "")
    env.pop("REPRO_BENCH_HISTORY", None)  # recipes set their own
    env.pop("PYTHONPATH", None)  # snippets must set it themselves
    return env


@pytest.fixture(scope="module", params=[d.name for d in DOCS])
def document(request, tmp_path_factory):
    path = next(d for d in DOCS if d.name == request.param)
    sandbox = make_sandbox(tmp_path_factory.mktemp(path.stem))
    state = {"namespace": {}, "env": sandbox_env(sandbox)}
    sys_path, modules = list(sys.path), set(sys.modules)
    yield path, sandbox, state
    # Undo snippet side effects on this process (Recipe 5 imports a
    # generated bench module from the sandbox, for example).  Only
    # sandbox-resident modules are evicted: anything else (numpy,
    # repro.*) is shared machinery that must not be re-imported.
    sys.path[:] = sys_path
    for name in set(sys.modules) - modules:
        module_file = getattr(sys.modules[name], "__file__", "") or ""
        if module_file and not Path(module_file).is_absolute():
            module_file = str(sandbox / module_file)
        if module_file.startswith(str(sandbox)):
            del sys.modules[name]


def run_python_block(block: Block, doc: Path, sandbox: Path, namespace: dict):
    code = compile(block.text, f"{doc.name}:{block.line}", "exec")
    cwd = os.getcwd()
    history = os.environ.pop("REPRO_BENCH_HISTORY", None)
    os.chdir(sandbox)
    try:
        exec(code, namespace)
    finally:
        os.chdir(cwd)
        if history is not None:
            os.environ["REPRO_BENCH_HISTORY"] = history


def run_console_block(block: Block, doc: Path, sandbox: Path, env: dict):
    for command in console_commands(block):
        proc = subprocess.run(
            ["bash", "-ec", command], cwd=sandbox, env=env,
            capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, (
            f"{doc.name}:{block.line}: `{command.splitlines()[0]}` exited "
            f"{proc.returncode}\nstdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
        )


def test_documents_have_executable_blocks(document):
    path, _, _ = document
    blocks = extract_blocks(path)
    runnable = [b for b in blocks if b.language in ("python", "console")]
    assert len(runnable) >= 4, f"{path.name} has too few executable snippets"
    assert any(b.language == "console" for b in runnable)
    for b in blocks:
        assert b.language in ("python", "console", "bash", "text"), \
            f"{path.name}:{b.line}: unknown fence language {b.language!r}"
    for b in blocks:
        if b.language == "console":
            assert console_commands(b), \
                f"{path.name}:{b.line}: console block with no `$ ` commands"


@pytest.mark.slow
def test_every_snippet_executes(document):
    """The whole document, in order, against one shared sandbox."""
    path, sandbox, state = document
    for block in extract_blocks(path):
        if block.language == "python":
            run_python_block(block, path, sandbox, state["namespace"])
        elif block.language == "console":
            run_console_block(block, path, sandbox, state["env"])
