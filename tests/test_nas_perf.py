"""Tests for repro.nas.perf: the Tables 3-4 / Figures 4-5 model."""

import pytest

from repro.nas import (
    Q_MEASURED_C64,
    Q_MEASURED_D256,
    SS_MEASURED_C64,
    SS_MEASURED_D256,
    NetworkParams,
    asci_q_npb_model,
    space_simulator_npb_model,
)


@pytest.fixture(scope="module")
def ss():
    return space_simulator_npb_model()


@pytest.fixture(scope="module")
def q():
    return asci_q_npb_model()


class TestCalibration:
    def test_table3_ss_column_exact(self, ss):
        for bench, measured in SS_MEASURED_C64.items():
            assert ss.mops(bench, "C", 64) == pytest.approx(measured, rel=1e-6), bench

    def test_table3_q_column_exact(self, q):
        for bench, measured in Q_MEASURED_C64.items():
            assert q.mops(bench, "C", 64) == pytest.approx(measured, rel=1e-6), bench

    def test_comm_constants_nonnegative(self, ss, q):
        assert all(k >= 0 for k in ss.k_comm.values())
        assert all(k >= 0 for k in q.k_comm.values())


class TestTable4Predictions:
    """Class D at 256 processors is a pure prediction of the model."""

    def test_ss_within_factor_two(self, ss):
        for bench, measured in SS_MEASURED_D256.items():
            predicted = ss.mops(bench, "D", 256)
            assert 0.5 < predicted / measured < 2.0, (bench, predicted, measured)

    def test_q_within_factor_two(self, q):
        for bench, measured in Q_MEASURED_D256.items():
            predicted = q.mops(bench, "D", 256)
            assert 0.5 < predicted / measured < 2.0, (bench, predicted, measured)

    def test_benchmark_ordering_preserved_ss(self, ss):
        # Paper ordering at D/256: LU > BT > SP > FT > CG.
        vals = {b: ss.mops(b, "D", 256) for b in SS_MEASURED_D256}
        ranked = sorted(vals, key=vals.get, reverse=True)
        assert ranked == ["LU", "BT", "SP", "FT", "CG"]

    def test_q_beats_ss_where_paper_says(self, ss, q):
        # Table 4: Q wins every class D benchmark.
        for bench in SS_MEASURED_D256:
            assert q.mops(bench, "D", 256) > ss.mops(bench, "D", 256), bench

    def test_ss_beats_q_on_ft_class_c(self, ss, q):
        # Table 3's surprise: SS FT 9860 > Q 7275.
        assert ss.mops("FT", "C", 64) > q.mops("FT", "C", 64)


class TestScalingShapes:
    def test_class_d_scales_better_than_class_c(self, ss):
        # Fig 4 vs Fig 5: the bigger problem keeps per-proc rates
        # higher at 256 procs.
        for bench in ("BT", "LU", "FT"):
            eff_d = ss.mops_per_proc(bench, "D", 256) / ss.mops_per_proc(bench, "D", 16)
            eff_c = ss.mops_per_proc(bench, "C", 256) / ss.mops_per_proc(bench, "C", 16)
            assert eff_d > eff_c, bench

    def test_lu_superlinear_bump_class_c(self, ss):
        # The Figure 5 feature: per-proc LU rate at 64 procs exceeds
        # the single-processor rate (local planes drop into L2).
        assert ss.mops_per_proc("LU", "C", 64) > ss.mops_per_proc("LU", "C", 1)

    def test_per_proc_rate_declines_past_trunk(self, ss):
        # >224 procs spans the trunk: per-proc rates sag (Fig 4/5 tails).
        for bench in ("CG", "FT"):
            assert ss.mops_per_proc(bench, "C", 256) < ss.mops_per_proc(bench, "C", 128), bench

    def test_total_mops_grow_with_procs_class_d(self, ss):
        for bench in ("BT", "SP", "LU"):
            rates = [ss.mops(bench, "D", p) for p in (16, 64, 256)]
            assert rates[0] < rates[1] < rates[2], bench

    def test_single_proc_has_no_comm(self, ss):
        from repro.nas import problem

        assert ss.comm_time(problem("CG", "S"), 1) == 0.0


class TestNetworkParams:
    def test_no_trunk_is_flat(self):
        net = NetworkParams(latency_s=1e-5, bytes_s=1e8)
        assert net.effective_bytes_s(1000) == 1e8

    def test_trunk_degrades_large_jobs(self):
        net = NetworkParams(latency_s=1e-5, bytes_s=1e8, trunk_bytes_s=1e9)
        assert net.effective_bytes_s(224) == 1e8
        assert net.effective_bytes_s(294) < 1e8

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkParams(latency_s=-1.0, bytes_s=1e8)
        with pytest.raises(ValueError):
            NetworkParams(latency_s=1e-5, bytes_s=1e8, trunk_bytes_s=0.0)
