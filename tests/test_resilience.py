"""The fault-injection + checkpoint/restart layer, end to end.

Covers the full §2.1-to-engine loop: fault taxonomy and plan algebra,
deterministic sampling from the measured failure rates, engine crash /
degradation semantics, the two-phase checkpoint store (including torn
epochs and corruption), and the restart loop's accounting.
"""

import dataclasses
import os

import numpy as np
import pytest

from repro.cluster.reliability import FailureModel
from repro.machine.node import DiskSpec, SPACE_SIMULATOR_NODE
from repro.core.snapshot import SnapshotError
from repro.resilience import (
    Checkpointer,
    CheckpointStore,
    ResilienceConfig,
    ResilientResult,
    node_crash_rate_per_hour,
    run_resilient,
    sample_fault_plan,
)
from repro.simmpi import (
    FaultEvent,
    FaultPlan,
    RankFailedError,
    UniformCost,
    run,
)

COST = UniformCost(latency_s=10e-6, mbytes_s=100.0)
FAST_NODE = dataclasses.replace(
    SPACE_SIMULATOR_NODE, disk=DiskSpec(seek_ms=0.001, sustained_mbytes_s=1000.0)
)


def stepper(n_steps=20, step_s=10.0):
    """A checkpointing step-loop program factory for the runner."""

    def factory(ckpt):
        def program(comm):
            snap = ckpt.restored(comm.rank)
            step = int(snap.meta["step"]) if snap is not None else 0
            x = snap["x"].copy() if snap is not None else np.zeros(8)
            while step < n_steps:
                yield comm.elapse(step_s)
                x += comm.rank + 1
                step += 1
                yield from ckpt.save(comm, {"x": x}, meta={"step": step})
            total = yield comm.allreduce(float(x[0]))
            return (step, total)

        return program

    return factory


class TestFaultPlan:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            FaultEvent("meteor", 0, 1.0)
        with pytest.raises(ValueError):
            FaultEvent("crash", -1, 1.0)
        with pytest.raises(ValueError):
            FaultEvent("slow", 0, 1.0, factor=0.5, duration=1.0)
        with pytest.raises(ValueError):
            FaultEvent("link", 0, 1.0, factor=2.0, duration=0.0)

    def test_plan_sorts_and_filters(self):
        plan = FaultPlan([
            FaultEvent("crash", 1, 50.0),
            FaultEvent("slow", 0, 10.0, 2.0, 5.0),
            FaultEvent("crash", 0, 20.0),
        ])
        assert [e.time for e in plan] == [10.0, 20.0, 50.0]
        assert [e.time for e in plan.crashes()] == [20.0, 50.0]

    def test_degradation_factors_window(self):
        plan = FaultPlan([
            FaultEvent("slow", 2, 10.0, 3.0, 5.0),
            FaultEvent("link", 1, 0.0, 4.0, 100.0),
        ])
        assert plan.compute_factor(2, 9.9) == 1.0
        assert plan.compute_factor(2, 10.0) == 3.0
        assert plan.compute_factor(2, 15.0) == 1.0  # window is half-open
        assert plan.compute_factor(0, 12.0) == 1.0
        assert plan.link_factor(1, 3, 50.0) == 4.0
        assert plan.link_factor(3, 1, 50.0) == 4.0  # either endpoint
        assert plan.link_factor(0, 2, 50.0) == 1.0

    def test_shifted_consumes_history_and_clips_windows(self):
        plan = FaultPlan([
            FaultEvent("crash", 0, 100.0),
            FaultEvent("crash", 1, 300.0),
            FaultEvent("slow", 2, 150.0, 2.0, 100.0),
        ])
        after = plan.shifted(200.0)
        assert [(e.kind, e.rank, e.time) for e in after.crashes()] == [("crash", 1, 100.0)]
        slow = [e for e in after if e.kind == "slow"]
        assert slow[0].time == 0.0 and slow[0].duration == pytest.approx(50.0)

    def test_rank_validation_against_job_size(self):
        plan = FaultPlan([FaultEvent("crash", 9, 1.0)])
        with pytest.raises(ValueError):
            run(lambda comm: iter(()), 4, faults=plan)


@pytest.mark.slow
class TestSampling:
    """Monte-Carlo fault-plan sampling: slow tier with the other
    statistical tests, the deterministic plan logic stays in the fast tier."""
    def test_deterministic_in_seed(self):
        a = sample_fault_plan(16, 24.0, seed=42, crash_rate_scale=5e3)
        b = sample_fault_plan(16, 24.0, seed=42, crash_rate_scale=5e3)
        assert [(e.kind, e.rank, e.time, e.factor, e.duration) for e in a] == [
            (e.kind, e.rank, e.time, e.factor, e.duration) for e in b
        ]
        c = sample_fault_plan(16, 24.0, seed=43, crash_rate_scale=5e3)
        assert [(e.kind, e.time) for e in a] != [(e.kind, e.time) for e in c]

    def test_rates_scale_with_window_and_ranks(self):
        rate = node_crash_rate_per_hour(FailureModel())
        assert rate > 0
        # Expected crashes ~= n_ranks * rate * scale * hours; with a
        # large ensemble the draw should land in the right decade.
        plan = sample_fault_plan(100, 10.0, seed=0, crash_rate_scale=1e3)
        expected = 100 * rate * 1e3 * 10.0
        assert 0.3 * expected < len(plan.crashes()) < 3.0 * expected

    def test_events_inside_window(self):
        plan = sample_fault_plan(8, 5.0, seed=1, crash_rate_scale=2e4)
        assert all(0 <= e.time < 5.0 * 3600.0 for e in plan)


class TestEngineFaults:
    def test_crash_raises_at_exact_virtual_time(self):
        def worker(comm):
            for _ in range(100):
                yield comm.elapse(1.0)
                yield comm.barrier()

        with pytest.raises(RankFailedError) as err:
            run(worker, 4, COST, faults=FaultPlan([FaultEvent("crash", 2, 17.5)]))
        assert err.value.rank == 2
        assert err.value.time == pytest.approx(17.5)

    def test_crash_after_rank_finished_is_survivable(self):
        def worker(comm):
            yield comm.elapse(1.0 + comm.rank)

        result = run(worker, 4, COST, faults=FaultPlan([FaultEvent("crash", 0, 1.5)]))
        assert result.elapsed == pytest.approx(4.0)

    def test_slow_node_stretches_only_its_window(self):
        def worker(comm):
            yield comm.compute(flops=1e9)  # 1 s at 1 Gflop/s
            return (yield comm.now())

        cost = UniformCost(mflops=1000.0)
        base = run(worker, 1, cost).returns[0]
        slowed = run(
            worker, 1, cost,
            faults=FaultPlan([FaultEvent("slow", 0, 0.0, 5.0, 1e6)]),
        ).returns[0]
        missed = run(
            worker, 1, cost,
            faults=FaultPlan([FaultEvent("slow", 0, 10.0, 5.0, 1e6)]),
        ).returns[0]
        assert slowed == pytest.approx(5.0 * base)
        assert missed == pytest.approx(base)

    def test_link_fault_stretches_p2p(self):
        payload = np.zeros(10**6, dtype=np.uint8)

        def sender(comm):
            yield comm.send(payload, dest=1)

        def receiver(comm):
            yield comm.recv(source=0)
            return (yield comm.now())

        base = run([sender, receiver], cost=COST).returns[1]
        degraded = run(
            [sender, receiver], cost=COST,
            faults=FaultPlan([FaultEvent("link", 1, 0.0, 10.0, 1e6)]),
        ).returns[1]
        assert degraded == pytest.approx(10.0 * base, rel=1e-6)

    def test_faulted_run_is_deterministic(self):
        plan = sample_fault_plan(4, 1.0, seed=3, crash_rate_scale=0.0)

        def worker(comm):
            yield comm.compute(flops=5e8)
            total = yield comm.allreduce(comm.rank)
            return total

        r1 = run(worker, 4, COST, faults=plan)
        r2 = run(worker, 4, COST, faults=plan)
        assert r1.clocks == r2.clocks and r1.returns == r2.returns


class TestCheckpointStore:
    def test_two_phase_commit_ignores_torn_epoch(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        for rank in range(2):
            store.write_rank(0, rank, {"x": np.arange(3)})
        store.commit(0, {"step": 5})
        # Epoch 1 written but never committed (crash mid-dump).
        store.write_rank(1, 0, {"x": np.arange(4)})
        assert store.epochs() == [0, 1]
        assert store.latest_committed() == 0
        assert store.commit_meta(0) == {"step": 5}
        with pytest.raises(SnapshotError):
            store.load_rank(1, 0)

    def test_corrupted_array_detected_on_restart(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.write_rank(0, 0, {"x": np.arange(10, dtype=np.float64)})
        store.commit(0)
        # Flip bytes in the array file, keep shape/dtype valid.
        path = os.path.join(store.rank_dir(0, 0), "x.npy")
        arr = np.load(path)
        arr[3] = -999.0
        np.save(path, arr)
        with pytest.raises(SnapshotError, match="checksum"):
            store.load_rank(0, 0)

    def test_no_restart_point_when_empty(self, tmp_path):
        assert CheckpointStore(str(tmp_path)).latest_committed() is None


class TestCheckpointer:
    def test_interval_gates_saves(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        ckpt = Checkpointer(store, 2, interval_s=35.0, node=FAST_NODE)

        def program(comm):
            wrote = []
            for step in range(6):
                yield comm.elapse(10.0)
                did = yield from ckpt.save(comm, {"x": np.zeros(4)}, meta={"step": step})
                wrote.append(did)
            return wrote

        result = run(program, 2)
        # Due at t=10 (first call: 10 >= ... no, interval 35 -> t=40, 80...)
        assert result.returns[0] == [False, False, False, True, False, False]
        assert store.latest_committed() == 0

    def test_force_overrides_interval(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        ckpt = Checkpointer(store, 1, interval_s=1e9, node=FAST_NODE)

        def program(comm):
            did = yield from ckpt.save(comm, {"x": np.zeros(2)}, force=True)
            return did

        assert run(program, 1).returns == [True]
        assert store.latest_committed() == 0

    def test_dump_charges_virtual_disk_time(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        node = dataclasses.replace(
            SPACE_SIMULATOR_NODE, disk=DiskSpec(seek_ms=0.0, sustained_mbytes_s=10.0)
        )
        ckpt = Checkpointer(store, 1, node=node)
        payload = {"x": np.zeros(10**6 // 8, dtype=np.float64)}  # 1 MB -> 0.1 s

        def program(comm):
            yield from ckpt.save(comm, payload, force=True)
            return (yield comm.now())

        assert run(program, 1).returns[0] == pytest.approx(0.1, rel=1e-6)


class TestRunner:
    def test_completes_through_multiple_crashes(self, tmp_path):
        plan = FaultPlan([FaultEvent("crash", 1, 55.0), FaultEvent("crash", 3, 160.0)])
        cfg = ResilienceConfig(
            checkpoint_dir=str(tmp_path), interval_s=30.0, restart_s=20.0, node=FAST_NODE
        )
        out = run_resilient(stepper(), 4, faults=plan, config=cfg)
        assert isinstance(out, ResilientResult)
        assert out.attempts == 3
        assert [f.rank for f in out.failures] == [1, 3]
        # Cumulative crash clocks line up with the absolute schedule.
        assert [f.cumulative_time_s for f in out.failures] == pytest.approx([55.0, 160.0])
        assert out.checkpoints >= 2
        assert out.lost_s > 0
        # Science result unharmed: every rank did all 20 steps.
        expected = sum((r + 1) * 20 for r in range(4))
        assert out.sim.returns == [(20, float(expected))] * 4

    def test_matches_fault_free_returns(self, tmp_path):
        cfg_kwargs = dict(interval_s=30.0, restart_s=20.0, node=FAST_NODE)
        faulty = run_resilient(
            stepper(), 4,
            faults=FaultPlan([FaultEvent("crash", 0, 77.0)]),
            config=ResilienceConfig(checkpoint_dir=str(tmp_path / "a"), **cfg_kwargs),
        )
        clean = run_resilient(
            stepper(), 4, faults=None,
            config=ResilienceConfig(checkpoint_dir=str(tmp_path / "b"), **cfg_kwargs),
        )
        assert clean.attempts == 1 and faulty.attempts == 2
        assert faulty.sim.returns == clean.sim.returns
        assert faulty.wall_s > clean.wall_s

    def test_reruns_are_bit_reproducible(self, tmp_path):
        plan = sample_fault_plan(4, 0.1, seed=11, crash_rate_scale=3e5)
        results = []
        for sub in ("x", "y"):
            cfg = ResilienceConfig(
                checkpoint_dir=str(tmp_path / sub), interval_s=30.0,
                restart_s=20.0, node=FAST_NODE,
            )
            results.append(run_resilient(stepper(), 4, faults=plan, config=cfg))
        a, b = results
        assert a.attempts == b.attempts
        assert [f.cumulative_time_s for f in a.failures] == [
            f.cumulative_time_s for f in b.failures
        ]
        assert a.wall_s == b.wall_s and a.sim.clocks == b.sim.clocks

    def test_gives_up_after_max_restarts(self, tmp_path):
        # A crash every 5 s against 10 s steps: no checkpoint can land.
        plan = FaultPlan([FaultEvent("crash", 0, 5.0 + 7.0 * i) for i in range(50)])
        cfg = ResilienceConfig(
            checkpoint_dir=str(tmp_path), interval_s=0.0, restart_s=1.0,
            max_restarts=4, node=FAST_NODE,
        )
        with pytest.raises(RuntimeError, match="restarts"):
            run_resilient(stepper(), 4, faults=plan, config=cfg)
