"""Tests for repro.galaxy: halo collapse diagnostics and dynamics."""

import numpy as np
import pytest

from repro.core import nbody_simulate
from repro.galaxy import (
    axis_ratios,
    cold_collapse_ics,
    density_profile,
    half_mass_radius,
    spin_alignment,
    virial_ratio,
)


class TestInitialConditions:
    def test_unit_mass_cold_start(self):
        pos, vel, m = cold_collapse_ics(300)
        assert m.sum() == pytest.approx(1.0)
        q = virial_ratio(pos, vel, m)
        assert q < 0.2  # cold: far from virial equilibrium

    def test_net_momentum_zero(self):
        pos, vel, m = cold_collapse_ics(200)
        p = (m[:, None] * vel).sum(axis=0)
        assert np.allclose(p, 0.0, atol=1e-12)

    def test_spin_about_z(self):
        pos, vel, m = cold_collapse_ics(500, spin=0.3, velocity_dispersion=0.0)
        j = (m[:, None] * np.cross(pos, vel)).sum(axis=0)
        assert j[2] > 0
        assert abs(j[0]) < 0.05 * j[2] and abs(j[1]) < 0.05 * j[2]

    def test_perturbation_flattens(self):
        pos, _, _ = cold_collapse_ics(2000, perturbation=0.3)
        assert pos[:, 0].std() > pos[:, 2].std()

    def test_validation(self):
        with pytest.raises(ValueError):
            cold_collapse_ics(5)
        with pytest.raises(ValueError):
            cold_collapse_ics(100, perturbation=1.5)


class TestDiagnostics:
    def test_virial_ratio_of_circular_orbit(self):
        # A circular two-body orbit satisfies the virial theorem: 2T = |W|.
        pos = np.array([[0.5, 0.0, 0.0], [-0.5, 0.0, 0.0]])
        vel = np.array([[0.0, 0.5, 0.0], [0.0, -0.5, 0.0]])
        m = np.array([0.5, 0.5])
        assert virial_ratio(pos, vel, m, eps=0.0) == pytest.approx(1.0)

    def test_density_profile_of_uniform_sphere(self):
        rng = np.random.default_rng(0)
        r = rng.random(20000) ** (1.0 / 3.0)
        d = rng.standard_normal((20000, 3))
        d /= np.linalg.norm(d, axis=1, keepdims=True)
        pos = r[:, None] * d
        m = np.full(20000, 1.0 / 20000)
        centers, rho = density_profile(pos, m, n_bins=8)
        expected = 1.0 / (4.0 / 3.0 * np.pi)
        inner = rho[(centers > 0.3) & (centers < 0.9)]
        assert np.allclose(inner, expected, rtol=0.15)

    def test_half_mass_radius_uniform_sphere(self):
        rng = np.random.default_rng(1)
        r = rng.random(10000) ** (1.0 / 3.0)
        d = rng.standard_normal((10000, 3))
        d /= np.linalg.norm(d, axis=1, keepdims=True)
        pos = r[:, None] * d
        m = np.full(10000, 1e-4)
        # Uniform sphere: r_half = (1/2)^(1/3).
        assert half_mass_radius(pos, m) == pytest.approx(0.5 ** (1.0 / 3.0), rel=0.03)

    def test_axis_ratios_of_known_ellipsoid(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((20000, 3))
        x[:, 1] *= 0.7
        x[:, 2] *= 0.4
        # The plain tensor recovers the input exactly.
        ba, ca, axes = axis_ratios(x, np.ones(20000), weight="none")
        assert ba == pytest.approx(0.7, abs=0.02)
        assert ca == pytest.approx(0.4, abs=0.02)
        assert abs(axes[0, 0]) > 0.98
        # The reduced (halo-standard) estimator preserves the ordering
        # with its documented round-ward bias.
        ba_r, ca_r, _ = axis_ratios(x, np.ones(20000), weight="reduced")
        assert ca_r < ba_r < 1.0
        assert ba_r == pytest.approx(0.7, abs=0.2)

    def test_axis_ratio_weight_validation(self):
        with pytest.raises(ValueError):
            axis_ratios(np.random.rand(10, 3), np.ones(10), weight="huh")

    def test_spin_alignment_of_oblate_rotator(self):
        # Disc-like system rotating about its (short) z axis: J aligns
        # with the minor axis by construction.
        rng = np.random.default_rng(3)
        pos = rng.standard_normal((5000, 3))
        pos[:, 2] *= 0.3
        vel = np.column_stack([-pos[:, 1], pos[:, 0], np.zeros(5000)])
        m = np.ones(5000)
        assert spin_alignment(pos, vel, m) > 0.95

    def test_validation(self):
        with pytest.raises(ValueError):
            density_profile(np.zeros((10, 3)), np.ones(10), n_bins=1)
        with pytest.raises(ValueError):
            # Unbound "system" with huge kinetic energy and positive PE
            # guard: two coincident massless points.
            virial_ratio(np.zeros((2, 3)), np.ones((2, 3)), np.zeros(2))
        with pytest.raises(ValueError):
            spin_alignment(np.random.rand(10, 3), np.zeros((10, 3)), np.ones(10))


@pytest.mark.slow
class TestColdCollapse:
    def test_collapse_virializes_and_concentrates(self):
        pos, vel, m = cold_collapse_ics(350, spin=0.15, seed=4)
        q0 = virial_ratio(pos, vel, m)
        r0 = half_mass_radius(pos, m)
        integ = nbody_simulate(pos, vel, m, dt=0.02, n_steps=120, theta=0.7, eps=0.05)
        q1 = virial_ratio(integ.positions, integ.velocities, m)
        r1 = half_mass_radius(integ.positions, m)
        # Violent relaxation: toward virial equilibrium and much more
        # centrally concentrated.
        assert q1 > 3.0 * q0
        assert 0.4 < q1 < 1.6
        assert r1 < 0.8 * r0
        # Density profile steepens: the inner region ends up several
        # times denser than the initial uniform value (softening and
        # N=350 bound how cuspy the center can get).
        centers, rho = density_profile(integ.positions, m)
        uniform = 1.0 / (4.0 / 3.0 * np.pi)
        assert rho[0] > 3.0 * uniform
        # And the outer envelope is far below it (the halo has a core-
        # envelope structure now).
        assert rho[-1] < 0.1 * uniform

    def test_collapsed_halo_is_triaxial_with_aligned_spin(self):
        pos, vel, m = cold_collapse_ics(350, spin=0.25, perturbation=0.25, seed=5)
        integ = nbody_simulate(pos, vel, m, dt=0.02, n_steps=120, theta=0.7, eps=0.05)
        ba, ca, _ = axis_ratios(integ.positions, m)
        assert ca < ba <= 1.0
        assert ca < 0.95  # genuinely flattened
        # The [18] result: J tends to the minor axis.
        assert spin_alignment(integ.positions, integ.velocities, m) > 0.7
