"""Tests for repro.core.cellserver: the global-key-namespace data plane."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ROOT_KEY,
    BoundingBox,
    CellServer,
    build_tree,
    combine_records,
    cover_interval,
    key_interval,
    keys_from_positions,
    shift_quadrupole,
)

UNIT_BOX = BoundingBox(np.zeros(3), 1.0)
MIN_PKEY = 1 << 63
END_PKEY = 1 << 64


def _server(n, seed=0, bucket=8):
    rng = np.random.default_rng(seed)
    pos = rng.random((n, 3))
    mass = rng.random(n) + 0.1
    keys = keys_from_positions(pos, UNIT_BOX)
    order = np.argsort(keys)
    return CellServer(keys[order], pos[order], mass[order], UNIT_BOX, bucket), pos, mass


class TestKeyInterval:
    def test_root_covers_everything(self):
        lo, hi = key_interval(ROOT_KEY)
        assert lo == MIN_PKEY and hi == END_PKEY

    def test_children_partition_parent(self):
        lo, hi = key_interval(0b1010)
        child_intervals = [key_interval((0b1010 << 3) | o) for o in range(8)]
        assert child_intervals[0][0] == lo
        assert child_intervals[-1][1] == hi
        for (a, b), (c, _) in zip(child_intervals, child_intervals[1:]):
            assert b == c


class TestCoverInterval:
    def test_full_space_is_root(self):
        assert cover_interval(MIN_PKEY, END_PKEY) == [ROOT_KEY]

    def test_single_octant(self):
        lo, hi = key_interval(0b1011)
        assert cover_interval(lo, hi) == [0b1011]

    def test_cover_is_exact_partition(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            a, b = sorted(rng.integers(MIN_PKEY, END_PKEY, 2, dtype=np.uint64).tolist())
            if a == b:
                continue
            cells = cover_interval(int(a), int(b))
            intervals = [key_interval(c) for c in cells]
            assert intervals[0][0] == a
            assert intervals[-1][1] == b
            for (x, y), (z, _) in zip(intervals, intervals[1:]):
                assert y == z

    def test_cover_is_minimal_size(self):
        # A cover never needs more than ~ 7 cells per level per side.
        rng = np.random.default_rng(1)
        for _ in range(10):
            a, b = sorted(rng.integers(MIN_PKEY, END_PKEY, 2, dtype=np.uint64).tolist())
            if a == b:
                continue
            assert len(cover_interval(int(a), int(b))) <= 2 * 7 * 21

    def test_validation(self):
        with pytest.raises(ValueError):
            cover_interval(0, 100)


class TestShiftQuadrupole:
    def test_shift_matches_recomputation(self):
        rng = np.random.default_rng(2)
        pos = rng.random((40, 3))
        mass = rng.random(40) + 0.1
        tree = build_tree(pos, mass, bucket_size=64, box=UNIT_BOX)
        com, quad, m = tree.com[0], tree.quad[0], tree.mass[0]
        # Shift expansion center to an arbitrary point by treating the
        # cell as a single child of a fictitious parent at new_com.
        new_com = np.array([2.0, -1.0, 0.5])
        shifted = shift_quadrupole(quad, m, com - new_com)
        rel = pos - new_com
        r2 = np.einsum("ij,ij->i", rel, rel)
        expect = np.empty(6)
        expect[0] = np.sum(mass * (3 * rel[:, 0] ** 2 - r2))
        expect[1] = np.sum(mass * (3 * rel[:, 1] ** 2 - r2))
        expect[2] = np.sum(mass * (3 * rel[:, 2] ** 2 - r2))
        expect[3] = np.sum(mass * 3 * rel[:, 0] * rel[:, 1])
        expect[4] = np.sum(mass * 3 * rel[:, 0] * rel[:, 2])
        expect[5] = np.sum(mass * 3 * rel[:, 1] * rel[:, 2])
        assert np.allclose(shifted, expect)

    def test_shift_keeps_traceless(self):
        quad = np.array([1.0, 2.0, -3.0, 0.5, 0.1, -0.2])
        out = shift_quadrupole(quad, 2.0, np.array([0.3, -0.4, 0.9]))
        assert out[0] + out[1] + out[2] == pytest.approx(0.0, abs=1e-12)


class TestCombineRecords:
    def test_combine_matches_direct_server_record(self):
        server, _, _ = _server(300, seed=3)
        root = server.record(ROOT_KEY, with_particles=False)
        kids = [
            server.record((ROOT_KEY << 3) | o, with_particles=False)
            for o in range(8)
        ]
        kids = [k for k in kids if k.count > 0]
        merged = combine_records(ROOT_KEY, kids)
        assert merged.count == root.count
        assert merged.mass == pytest.approx(root.mass)
        assert np.allclose(merged.com, root.com)
        assert np.allclose(merged.quad, root.quad, atol=1e-9)
        # bmax combination is conservative: at least the true bound.
        assert merged.bmax >= root.bmax - 1e-12 or merged.bmax >= 0

    def test_combine_empty_rejected(self):
        with pytest.raises(ValueError):
            combine_records(ROOT_KEY, [])


class TestCellServer:
    def test_record_matches_tree_multipoles(self):
        rng = np.random.default_rng(4)
        pos = rng.random((400, 3))
        mass = rng.random(400) + 0.1
        tree = build_tree(pos, mass, bucket_size=8, box=UNIT_BOX)
        server = CellServer(tree.keys, tree.positions, tree.masses, UNIT_BOX, 8)
        for c in range(0, tree.n_cells, 7):
            rec = server.record(int(tree.cell_keys[c]), with_particles=False)
            assert rec.count == tree.count[c]
            assert rec.mass == pytest.approx(tree.mass[c])
            assert np.allclose(rec.com, tree.com[c])
            assert np.allclose(rec.quad, tree.quad[c], atol=1e-9)
            assert rec.bmax == pytest.approx(tree.bmax[c], rel=1e-9)

    def test_leaf_status_follows_bucket_rule(self):
        server, _, _ = _server(200, seed=5, bucket=16)
        root = server.record(ROOT_KEY)
        assert not root.is_leaf
        assert root.children  # nonempty children listed

    def test_leaf_record_carries_particles(self):
        server, _, _ = _server(10, seed=6, bucket=32)
        rec = server.record(ROOT_KEY)
        assert rec.is_leaf
        assert rec.positions.shape == (10, 3)
        assert rec.masses.shape == (10,)

    def test_empty_cell_record(self):
        server, _, _ = _server(5, seed=7)
        # A deep cell far from any particle.
        rec = server.record((ROOT_KEY << 9) | 0b111_000_111)
        assert rec.count in (0, 1, 2, 3, 4, 5)  # usually 0; never crashes

    def test_children_counts_sum(self):
        server, _, _ = _server(500, seed=8, bucket=4)
        root = server.record(ROOT_KEY)
        total = sum(server.record(k, with_particles=False).count for k in root.children)
        assert total == 500

    def test_unsorted_keys_rejected(self):
        keys = np.array([5, 3], dtype=np.uint64) | np.uint64(1 << 63)
        with pytest.raises(ValueError):
            CellServer(keys, np.zeros((2, 3)), np.ones(2), UNIT_BOX)

    def test_empty_server(self):
        server = CellServer(
            np.empty(0, dtype=np.uint64), np.empty((0, 3)), np.empty(0), UNIT_BOX
        )
        rec = server.record(ROOT_KEY)
        assert rec.count == 0
        assert server.leaf_groups([]) == []

    def test_leaf_groups_partition_particles(self):
        server, _, _ = _server(300, seed=9, bucket=8)
        groups = server.leaf_groups([ROOT_KEY])
        covered = np.zeros(300, dtype=bool)
        for _, s, e in groups:
            assert e - s <= 8 or e - s > 0
            assert not covered[s:e].any()
            covered[s:e] = True
        assert covered.all()

    @given(st.integers(1, 200), st.integers(1, 32), st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_groups_partition_under_random_branches(self, n, bucket, seed):
        rng = np.random.default_rng(seed)
        pos = rng.random((n, 3))
        keys = keys_from_positions(pos, UNIT_BOX)
        order = np.argsort(keys)
        server = CellServer(keys[order], pos[order], np.ones(n), UNIT_BOX, bucket)
        # Split key space at a random particle boundary: two "ranks".
        cut = int(rng.integers(0, n + 1))
        lo, mid, hi = MIN_PKEY, int(keys[order][cut]) if cut < n else END_PKEY, END_PKEY
        branches = cover_interval(lo, mid) + cover_interval(mid, hi)
        groups = server.leaf_groups(branches)
        covered = np.zeros(n, dtype=bool)
        for _, s, e in groups:
            assert not covered[s:e].any()
            covered[s:e] = True
        assert covered.all()
