"""Tests for repro.core.hilbert: Hilbert keys and locality metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hilbert import (
    axes_to_hilbert,
    curve_jump_stats,
    decomposition_surface,
    hilbert_keys_from_positions,
    hilbert_to_axes,
)
from repro.core import BoundingBox, keys_from_positions


class TestHilbertIndex:
    def test_round_trip_full_depth(self):
        rng = np.random.default_rng(0)
        coords = rng.integers(0, 1 << 21, (1000, 3))
        h = axes_to_hilbert(coords, 21)
        assert np.array_equal(hilbert_to_axes(h, 21), coords.astype(np.uint64))

    def test_complete_permutation_small_cube(self):
        coords = np.array([[x, y, z] for x in range(8) for y in range(8) for z in range(8)])
        h = axes_to_hilbert(coords, 3)
        assert np.array_equal(np.sort(h), np.arange(512, dtype=np.uint64))

    def test_defining_adjacency_property(self):
        # Consecutive Hilbert cells are always face neighbors — the
        # property Morton lacks.
        coords = np.array([[x, y, z] for x in range(8) for y in range(8) for z in range(8)])
        h = axes_to_hilbert(coords, 3)
        seq = coords[np.argsort(h)]
        steps = np.abs(np.diff(seq, axis=0)).sum(axis=1)
        assert np.all(steps == 1)

    def test_morton_lacks_adjacency(self):
        # Sanity contrast: Morton order takes non-unit jumps.
        coords = np.array([[x, y, z] for x in range(8) for y in range(8) for z in range(8)])
        box = BoundingBox(np.zeros(3), 8.0)
        keys = keys_from_positions(coords + 0.5, box)
        seq = coords[np.argsort(keys)]
        steps = np.abs(np.diff(seq, axis=0)).sum(axis=1)
        assert steps.max() > 1

    def test_validation(self):
        with pytest.raises(ValueError):
            axes_to_hilbert(np.zeros((3, 2), dtype=int), 4)
        with pytest.raises(ValueError):
            axes_to_hilbert(np.zeros((3, 3), dtype=int), 22)
        with pytest.raises(ValueError):
            axes_to_hilbert(np.full((1, 3), 16, dtype=int), 4)

    @given(st.integers(1, 8), st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_property_bijective(self, bits, seed):
        rng = np.random.default_rng(seed)
        coords = rng.integers(0, 1 << bits, (64, 3))
        h = axes_to_hilbert(coords, bits)
        assert np.array_equal(hilbert_to_axes(h, bits), coords.astype(np.uint64))
        # Distinct coords -> distinct indices.
        uniq_c = np.unique(coords, axis=0).shape[0]
        assert np.unique(h).size == uniq_c


class TestLocality:
    def test_hilbert_beats_morton_on_jumps(self):
        rng = np.random.default_rng(1)
        pos = rng.random((4000, 3))
        box = BoundingBox(np.zeros(3), 1.0)
        h_order = np.argsort(hilbert_keys_from_positions(pos, box))
        m_order = np.argsort(keys_from_positions(pos, box))
        h_med, h_max = curve_jump_stats(pos, h_order)
        m_med, m_max = curve_jump_stats(pos, m_order)
        assert h_med <= m_med * 1.05
        assert h_max < m_max  # Morton's diagonal block jumps

    def test_both_curves_beat_random(self):
        rng = np.random.default_rng(2)
        pos = rng.random((2000, 3))
        box = BoundingBox(np.zeros(3), 1.0)
        r_med, _ = curve_jump_stats(pos, rng.permutation(2000))
        for order in (
            np.argsort(hilbert_keys_from_positions(pos, box)),
            np.argsort(keys_from_positions(pos, box)),
        ):
            med, _ = curve_jump_stats(pos, order)
            assert med < 0.2 * r_med

    def test_decomposition_surface_favors_hilbert(self):
        rng = np.random.default_rng(3)
        pos = rng.random((3000, 3))
        box = BoundingBox(np.zeros(3), 1.0)
        h_order = np.argsort(hilbert_keys_from_positions(pos, box))
        m_order = np.argsort(keys_from_positions(pos, box))
        radius = 0.06
        h_cross = decomposition_surface(pos, h_order, 8, radius)
        m_cross = decomposition_surface(pos, m_order, 8, radius)
        r_cross = decomposition_surface(pos, rng.permutation(3000), 8, radius)
        # Both curves crush random; Hilbert at least matches Morton.
        assert h_cross < 0.5 * r_cross
        assert m_cross < 0.5 * r_cross
        assert h_cross <= 1.15 * m_cross

    def test_validation(self):
        with pytest.raises(ValueError):
            decomposition_surface(np.zeros((10, 3)), np.arange(10), 1, 0.1)
        with pytest.raises(ValueError):
            hilbert_keys_from_positions(np.zeros((5, 2)))
