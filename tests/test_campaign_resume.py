"""Crash-recovery suite: SIGKILL a running campaign, resume, lose
nothing.

A real ``python -m repro.campaign run`` subprocess is killed with
SIGKILL mid-campaign — no atexit, no cleanup, exactly the §2.1 failure
mode the two-phase checkpoint protocol exists for.  Resume must then
(a) recompute **zero** shards that had committed before the kill,
(b) finish the rest, and (c) finalize a result store byte-identical to
an uninterrupted run of the same catalog.  Torn epochs (crash between
ledger write and COMMIT) must be ignored, and the epoch pruning that
keeps campaign disk bounded must never remove the restart point.
"""

import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.campaign import ClusterSpec, run_campaign, save_catalog, sweep
from repro.campaign.runner import CHECKPOINT_SUBDIR, _ledger_arrays, _load_ledger
from repro.campaign.fingerprint import scenario_fingerprint_hex
from repro.resilience.checkpoint import CheckpointStore

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")

CATALOG = list(sweep(ClusterSpec(work_hours=12.0), n_nodes=list(range(8, 8 + 16))))
assert len(CATALOG) == 16


def _subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _committed_count(ckpt: CheckpointStore) -> int:
    """Shards committed so far, 0 while no epoch exists (poll-safe)."""
    try:
        epoch = ckpt.latest_committed()
        if epoch is None:
            return 0
        return int(ckpt.commit_meta(epoch)["completed"])
    except (OSError, json.JSONDecodeError, KeyError):
        # The coordinator may be mid-commit or mid-prune; poll again.
        return 0


@pytest.mark.slow
class TestSigkillResume:
    def test_killed_campaign_resumes_without_recompute(self, tmp_path):
        catalog_path = tmp_path / "catalog.jsonl"
        save_catalog(CATALOG, str(catalog_path))
        crash_dir = tmp_path / "crashed"
        ckpt = CheckpointStore(str(crash_dir / CHECKPOINT_SUBDIR))

        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.campaign", "run", str(catalog_path),
             "--dir", str(crash_dir), "--workers", "2", "--throttle", "0.15"],
            env=_subprocess_env(),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.time() + 60.0
            while _committed_count(ckpt) < 3:
                assert proc.poll() is None, "campaign finished before we could kill it"
                assert time.time() < deadline, "no progress within 60 s"
                time.sleep(0.02)
            os.kill(proc.pid, signal.SIGKILL)
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL

        # The committed ledger is the survivors' roll: stable now.
        survivors = set(_load_ledger(ckpt))
        assert 3 <= len(survivors) < 16, "kill landed mid-campaign"

        report = run_campaign(CATALOG, str(crash_dir), workers=1)

        # (a) zero committed shards recomputed, and nothing left out.
        recomputed = set(report.computed_fingerprints) & survivors
        assert recomputed == set()
        assert report.resume_hits == len(survivors)
        assert report.computed == 16 - len(survivors)
        assert report.failed == 0
        expected = {scenario_fingerprint_hex(s) for s in CATALOG}
        assert set(report.computed_fingerprints) | survivors == expected

        # (c) byte-identical to a never-interrupted campaign.
        clean_dir = tmp_path / "clean"
        clean = run_campaign(CATALOG, str(clean_dir), workers=1)
        assert clean.computed == 16
        assert (crash_dir / "results.jsonl").read_bytes() == \
            (clean_dir / "results.jsonl").read_bytes()


class TestTornEpochs:
    def test_torn_epoch_is_ignored(self, tmp_path):
        """A ledger written but never committed must not resume."""
        root = tmp_path / "c"
        ckpt = CheckpointStore(str(root / CHECKPOINT_SUBDIR))
        fp = scenario_fingerprint_hex(CATALOG[0])
        record = {"fingerprint": fp, "kind": "cluster",
                  "spec": CATALOG[0].to_dict(), "result": {"bogus": 1.0}}
        ckpt.write_rank(0, 0, _ledger_arrays([record]), {"records": [record]})
        # no commit: the crash happened between write and COMMIT

        report = run_campaign(CATALOG[:4], str(root), workers=1)
        assert report.resume_hits == 0
        assert report.computed == 4
        # The bogus torn result must not appear in the store.
        results = (root / "results.jsonl").read_text()
        assert "bogus" not in results

    def test_stale_fingerprint_in_ledger_recomputes(self, tmp_path):
        """A committed record whose digest no longer names its spec
        (encoding bump, corruption) is dropped, not trusted."""
        root = tmp_path / "c"
        ckpt = CheckpointStore(str(root / CHECKPOINT_SUBDIR))
        record = {"fingerprint": "00" * 16, "kind": "cluster",
                  "spec": CATALOG[0].to_dict(), "result": {"bogus": 1.0}}
        ckpt.write_rank(0, 0, _ledger_arrays([record]), {"records": [record]})
        ckpt.commit(0, {"completed": 1})

        report = run_campaign(CATALOG[:2], str(root), workers=1)
        assert report.resume_hits == 0
        assert report.computed == 2
        assert "bogus" not in (root / "results.jsonl").read_text()


class TestCheckpointPrune:
    def test_prune_keeps_restart_point(self, tmp_path):
        ckpt = CheckpointStore(str(tmp_path / "ck"))
        for epoch in range(5):
            ckpt.write_rank(epoch, 0, {"x": np.array([epoch])}, {"epoch": epoch})
            ckpt.commit(epoch)
        removed = ckpt.prune(keep_last=2)
        assert removed == [0, 1, 2]
        assert ckpt.epochs() == [3, 4]
        assert ckpt.latest_committed() == 4
        assert int(ckpt.load_rank(4, 0)["x"][0]) == 4

    def test_prune_spares_newer_torn_epoch(self, tmp_path):
        ckpt = CheckpointStore(str(tmp_path / "ck"))
        ckpt.write_rank(0, 0, {"x": np.array([0])})
        ckpt.commit(0)
        ckpt.write_rank(1, 0, {"x": np.array([1])})  # in-flight, no commit
        assert ckpt.prune(keep_last=1) == []
        assert ckpt.epochs() == [0, 1]

    def test_prune_removes_older_torn_epoch(self, tmp_path):
        ckpt = CheckpointStore(str(tmp_path / "ck"))
        ckpt.write_rank(0, 0, {"x": np.array([0])})  # torn
        ckpt.write_rank(1, 0, {"x": np.array([1])})
        ckpt.commit(1)
        assert ckpt.prune(keep_last=1) == [0]
        assert ckpt.epochs() == [1]

    def test_prune_validates_keep_last(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointStore(str(tmp_path / "ck")).prune(keep_last=0)

    def test_campaign_disk_stays_bounded(self, tmp_path):
        root = tmp_path / "c"
        run_campaign(CATALOG, str(root), workers=1, checkpoint_keep=2)
        ckpt = CheckpointStore(str(root / CHECKPOINT_SUBDIR))
        assert len(ckpt.epochs()) == 2
        assert _committed_count(ckpt) == 16
