"""Tests for repro.cluster.checkpoint: checkpoint/restart economics."""

import math

import pytest

from repro.cluster import (
    CheckpointPlan,
    expected_runtime,
    job_mtbf_hours,
    young_interval,
)


class TestJobMtbf:
    def test_scales_inversely_with_nodes(self):
        assert job_mtbf_hours(32) == pytest.approx(job_mtbf_hours(64) * 2.0)

    def test_full_cluster_mtbf_matches_observation(self):
        # Section 2.1: 23 service failures in 9 months over the whole
        # cluster -> MTBF ~ 9*30*24/23 ~ 280 hours.
        mtbf = job_mtbf_hours(294)
        assert mtbf == pytest.approx(9 * 30 * 24 / 23.0, rel=0.02)

    def test_single_node_mtbf_years(self):
        # 23 failures / 9 months / 294 nodes ~ 0.10 failures per node
        # per year: a single node fails about once a decade.
        assert 8.0 < job_mtbf_hours(1) / 8766.0 < 11.0

    def test_validation(self):
        with pytest.raises(ValueError):
            job_mtbf_hours(0)


class TestYoungInterval:
    def test_formula(self):
        assert young_interval(0.02, 200.0) == pytest.approx(math.sqrt(2 * 0.02 * 200.0))

    def test_cheaper_dumps_mean_more_frequent_checkpoints(self):
        assert young_interval(0.01, 200.0) < young_interval(0.1, 200.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            young_interval(0.0, 100.0)


class TestExpectedRuntime:
    def test_no_failures_limit(self):
        # Huge MTBF: expected time -> work * (1 + dump/tau).
        t = expected_runtime(100.0, 0.05, 1e12, interval_hours=5.0)
        assert t == pytest.approx(100.0 * (1 + 0.05 / 5.0), rel=1e-6)

    def test_failures_add_rework(self):
        short = expected_runtime(100.0, 0.05, 100.0)
        long = expected_runtime(100.0, 0.05, 10_000.0)
        assert short > long

    def test_young_interval_near_optimal(self):
        # The Young interval beats 4x-off intervals.
        work, dump, mtbf = 500.0, 0.05, 300.0
        opt = expected_runtime(work, dump, mtbf)
        assert opt <= expected_runtime(work, dump, mtbf, interval_hours=4 * young_interval(dump, mtbf))
        assert opt <= expected_runtime(work, dump, mtbf, interval_hours=young_interval(dump, mtbf) / 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_runtime(0.0, 0.1, 100.0)
        with pytest.raises(ValueError):
            expected_runtime(10.0, 0.1, 100.0, interval_hours=-1.0)


class TestCheckpointPlan:
    def test_supernova_campaign(self):
        # Section 4.4: 32-processor runs lasting "roughly 4 months".
        # 1M SPH particles over 32 nodes, ~100 bytes/particle state.
        plan = CheckpointPlan(
            n_nodes=32, work_hours=4 * 30 * 24.0, state_bytes_per_node=1e6 / 32 * 100
        )
        # Several failures expected over four months on 32 nodes...
        assert plan.expected_failures > 1.0
        # ...but local-disk checkpoints keep overhead tiny.
        assert plan.overhead_fraction < 0.02
        assert plan.expected_wall_hours < 4 * 30 * 24.0 * 1.02

    def test_cosmology_run_fits_between_failures(self):
        # Section 4.3: the 24-hour 250-processor run completed "in a
        # single run" — plausible: expected failures below ~1.
        plan = CheckpointPlan(
            n_nodes=250, work_hours=24.0, state_bytes_per_node=134e6 / 250 * 48
        )
        assert plan.expected_failures < 1.0

    def test_dump_cost_from_disk_model(self):
        plan = CheckpointPlan(n_nodes=10, work_hours=100.0, state_bytes_per_node=2.8e9)
        # 2.8 GB at 28 MB/s local disk = 100 s.
        assert plan.dump_hours == pytest.approx(100.0 / 3600.0, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            CheckpointPlan(n_nodes=0, work_hours=1.0, state_bytes_per_node=1.0)
