"""Tests for PM gravity, comoving evolution, FoF, and clustering."""

import numpy as np
import pytest

from repro.cosmology import (
    EDS,
    LCDM,
    PAPER_RUN,
    ComovingSimulation,
    CosmologyRunModel,
    PMSolver,
    cic_deposit,
    cic_interpolate,
    correlation_function,
    friends_of_friends,
    measured_power_spectrum,
    pair_counts_periodic,
    zeldovich_ics,
)


class TestCic:
    def test_deposit_conserves_mass(self):
        rng = np.random.default_rng(0)
        pos = rng.random((500, 3))
        rho = cic_deposit(pos, 16)
        assert rho.sum() == pytest.approx(500.0)

    def test_deposit_weighted(self):
        rng = np.random.default_rng(1)
        pos = rng.random((100, 3))
        w = rng.random(100)
        rho = cic_deposit(pos, 8, w)
        assert rho.sum() == pytest.approx(w.sum())

    def test_particle_at_grid_point_fills_one_cell(self):
        # CIC weight collapses to a single cell when the particle sits
        # exactly on a grid point.
        pos = np.array([[1.0 / 8, 1.0 / 8, 1.0 / 8]])
        rho = cic_deposit(pos, 8)
        assert rho[1, 1, 1] == pytest.approx(1.0)

    def test_interpolate_constant_field(self):
        field = np.full((8, 8, 8), 3.5)
        rng = np.random.default_rng(2)
        vals = cic_interpolate(field, rng.random((50, 3)))
        assert np.allclose(vals, 3.5)

    def test_deposit_interpolate_adjoint(self):
        # Interpolating the deposit of one particle at its own position
        # gives the kernel self-overlap (positive, <= full weight).
        pos = np.array([[0.37, 0.61, 0.24]])
        rho = cic_deposit(pos, 8)
        v = cic_interpolate(rho, pos)
        assert 0 < v[0] <= 1.0 * 8**0 + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            cic_deposit(np.zeros((2, 2)), 8)
        with pytest.raises(ValueError):
            cic_deposit(np.zeros((2, 3)), 1)


class TestPMSolver:
    def test_single_mode_force_accuracy(self):
        # Displaced-lattice sine mode: the PM force must match the
        # analytic Zel'dovich value to better than a percent.
        n = 16
        g1 = (np.arange(n) + 0.5) / n
        lattice = np.stack(np.meshgrid(g1, g1, g1, indexing="ij"), axis=-1).reshape(-1, 3)
        amp = 0.002
        pos = lattice.copy()
        pos[:, 0] = np.mod(pos[:, 0] + amp * np.sin(2 * np.pi * lattice[:, 0]), 1.0)
        acc = PMSolver(n).accelerations(pos)
        expected = amp * np.sin(2 * np.pi * lattice[:, 0])
        big = np.abs(expected) > 0.3 * amp
        assert np.allclose(acc[big, 0] / expected[big], 1.0, atol=0.02)
        assert np.abs(acc[:, 1:]).max() < 0.02 * amp

    def test_uniform_lattice_no_force(self):
        n = 8
        g1 = (np.arange(n) + 0.5) / n
        lattice = np.stack(np.meshgrid(g1, g1, g1, indexing="ij"), axis=-1).reshape(-1, 3)
        acc = PMSolver(n).accelerations(lattice)
        assert np.abs(acc).max() < 1e-12

    def test_potential_solves_poisson(self):
        solver = PMSolver(16, deconvolve=False)
        x = (np.arange(16) + 0.5) / 16
        delta = np.sin(2 * np.pi * x)[:, None, None] * np.ones((1, 16, 16))
        delta -= delta.mean()
        phi = solver.potential(delta)
        # del^2 phi = delta -> phi = -delta/(2 pi)^2 for the k=1 mode.
        expected = -delta / (2 * np.pi) ** 2
        assert np.allclose(phi, expected, atol=1e-4 * np.abs(expected).max() + 1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            PMSolver(2)
        with pytest.raises(ValueError):
            PMSolver(8).potential(np.zeros((4, 4, 4)))
        with pytest.raises(ValueError):
            PMSolver(8).density_contrast(np.zeros((0, 3)))


@pytest.mark.slow
class TestLinearGrowth:
    def test_eds_zeldovich_growth(self):
        # The defining validation: a Zel'dovich realization grows by
        # D(a2)/D(a1) = a2/a1 in EdS while linear.
        ics = zeldovich_ics(
            n_side=16, box_mpc_h=500.0, a_start=0.1, cosmology=EDS, seed=2, k_cut_fraction=0.5
        )
        sim = ComovingSimulation(ics)
        r0 = sim.density_rms()
        sim.run_to(0.3, dlna=0.04)
        assert sim.density_rms() / r0 == pytest.approx(3.0, rel=0.06)

    def test_lcdm_growth_tracks_growth_factor(self):
        ics = zeldovich_ics(
            n_side=16, box_mpc_h=500.0, a_start=0.1, cosmology=LCDM, seed=3, k_cut_fraction=0.5
        )
        sim = ComovingSimulation(ics)
        r0 = sim.density_rms()
        sim.run_to(0.5, dlna=0.04)
        expected = LCDM.growth_factor(0.5) / LCDM.growth_factor(0.1)
        assert sim.density_rms() / r0 == pytest.approx(expected, rel=0.08)

    def test_validation(self):
        ics = zeldovich_ics(n_side=8, seed=4)
        sim = ComovingSimulation(ics)
        with pytest.raises(ValueError):
            sim.step(dlna=0.0)
        with pytest.raises(ValueError):
            sim.run_to(ics.a_start / 2)


class TestFof:
    def test_finds_planted_clusters(self):
        rng = np.random.default_rng(5)
        centers = np.array([[0.25, 0.25, 0.25], [0.75, 0.75, 0.75]])
        blobs = [c + 0.004 * rng.standard_normal((60, 3)) for c in centers]
        field = rng.random((200, 3))
        pos = np.concatenate(blobs + [field])
        result = friends_of_friends(pos, linking_length=0.1, min_members=20)
        assert result.n_halos == 2
        found = sorted(h.n_members for h in result.halos)
        assert found[0] >= 55  # blobs recovered nearly whole

    def test_halo_centers_accurate(self):
        rng = np.random.default_rng(6)
        center = np.array([0.5, 0.5, 0.5])
        pos = center + 0.003 * rng.standard_normal((100, 3))
        result = friends_of_friends(pos, linking_length=0.2, min_members=10)
        assert result.n_halos == 1
        assert np.allclose(result.halos[0].center, center, atol=0.01)

    def test_periodic_halo_across_boundary(self):
        rng = np.random.default_rng(7)
        pos = np.mod(0.002 * rng.standard_normal((80, 3)), 1.0)  # straddles origin
        result = friends_of_friends(pos, linking_length=0.2, min_members=10)
        assert result.n_halos == 1
        # Center near a box corner (any of them).
        c = result.halos[0].center
        assert np.all((c < 0.05) | (c > 0.95))

    def test_field_particles_unassigned(self):
        rng = np.random.default_rng(8)
        pos = rng.random((100, 3))  # sparse: no halos at tight linking
        result = friends_of_friends(pos, linking_length=0.05, min_members=5)
        assert result.n_halos == 0
        assert np.all(result.group_id == -1)

    def test_masses_sorted_descending(self):
        rng = np.random.default_rng(9)
        blob1 = 0.5 + 0.003 * rng.standard_normal((90, 3))
        blob2 = 0.2 + 0.003 * rng.standard_normal((40, 3))
        result = friends_of_friends(np.concatenate([blob2, blob1]), min_members=10)
        sizes = [h.n_members for h in result.halos]
        assert sizes == sorted(sizes, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            friends_of_friends(np.zeros((5, 2)))
        with pytest.raises(ValueError):
            friends_of_friends(np.zeros((5, 3)), linking_length=0.0)


class TestClustering:
    def test_random_points_uncorrelated(self):
        rng = np.random.default_rng(10)
        pos = rng.random((800, 3))
        edges = np.linspace(0.05, 0.3, 8)
        _, xi = correlation_function(pos, edges)
        assert np.abs(xi).max() < 0.1

    def test_clustered_points_positive_xi_small_r(self):
        rng = np.random.default_rng(11)
        centers = rng.random((20, 3))
        pos = np.mod(
            centers[rng.integers(0, 20, 1000)] + 0.01 * rng.standard_normal((1000, 3)), 1.0
        )
        edges = np.array([0.005, 0.02, 0.2, 0.4])
        _, xi = correlation_function(pos, edges)
        assert xi[0] > 10.0  # strong small-scale clustering
        assert abs(xi[-1]) < 1.0

    def test_pair_counts_match_brute_force(self):
        rng = np.random.default_rng(12)
        pos = rng.random((100, 3))
        edges = np.linspace(0.0, 0.5, 6)
        counts = pair_counts_periodic(pos, edges)
        d = pos[:, None, :] - pos[None, :, :]
        d -= np.round(d)
        r = np.sqrt((d**2).sum(axis=2))
        iu = np.triu_indices(100, k=1)
        brute = np.histogram(r[iu], bins=edges)[0]
        assert np.array_equal(counts, brute)

    def test_measured_power_recovers_input_shape(self):
        # The Zel'dovich realization's measured P(k) should match the
        # linear input in the well-sampled band.
        from repro.cosmology import PowerSpectrum

        ics = zeldovich_ics(n_side=16, box_mpc_h=200.0, a_start=0.2, seed=13)
        k, p = measured_power_spectrum(
            ics.positions, grid=16, box_mpc_h=200.0, n_bins=6, subtract_shot_noise=False
        )
        ps = PowerSpectrum(LCDM)
        expected = ps(k, a=0.2)
        ratio = p[:3] / expected[:3]  # low-k band
        assert np.all((ratio > 0.4) & (ratio < 2.5))

    def test_validation(self):
        with pytest.raises(ValueError):
            pair_counts_periodic(np.zeros((5, 3)), np.array([0.0, 0.6]))
        with pytest.raises(ValueError):
            measured_power_spectrum(np.zeros((5, 3)), grid=2)


class TestRunModel:
    def test_total_flops_matches_paper(self):
        # Section 4.3: 10^16 flops.
        assert PAPER_RUN.total_flops == pytest.approx(1e16, rel=0.01)

    def test_wall_time_near_24_hours(self):
        assert PAPER_RUN.wall_seconds == pytest.approx(24 * 3600.0, rel=0.15)

    def test_achieved_gflops_matches_paper(self):
        # 112 Gflop/s average.
        assert PAPER_RUN.achieved_gflops == pytest.approx(112.0, rel=0.15)

    def test_peak_io_near_7_gbytes(self):
        assert PAPER_RUN.peak_io_bytes_s == pytest.approx(7e9, rel=0.01)

    def test_average_io_near_417_mbytes(self):
        assert PAPER_RUN.average_io_bytes_s == pytest.approx(417e6, rel=0.05)

    def test_several_runs_per_week(self):
        assert PAPER_RUN.runs_per_week > 3.0

    def test_validation(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            CosmologyRunModel(n_steps=0)
        with _pytest.raises(ValueError):
            CosmologyRunModel(io_duty_efficiency=0.0)
