"""Tests for repro.cluster: BOM, power, reliability, Moore, TOP500."""

import numpy as np
import pytest

from repro.cluster import (
    INSTALL_DEFECTS,
    LOKI_BOM,
    NBODY_LOKI_VS_SS,
    SERVICE_FAILURES_9MO,
    SPACE_SIMULATOR_BOM,
    SPACE_SIMULATOR_POWER,
    SS_COMPONENTS,
    TOP500_JUN2003,
    TOP500_NOV2002,
    BillOfMaterials,
    FailureModel,
    LineItem,
    PowerBudget,
    disk_dollars_per_gb,
    estimate_rank,
    moore_factor,
    npb_improvement_ratios,
    npb_price_performance_vs_moore,
    price_per_mflops_cents,
    ram_dollars_per_mb,
)


class TestBom:
    def test_space_simulator_total(self):
        # Table 1: $483,855.
        assert SPACE_SIMULATOR_BOM.total_cost == pytest.approx(483_855.0)

    def test_cost_per_node(self):
        # Table 1: $1646 per node.
        assert SPACE_SIMULATOR_BOM.cost_per_node == pytest.approx(1646.0, abs=1.0)

    def test_network_share(self):
        # "$728 (44%) of that figure representing the NICs and switches".
        assert SPACE_SIMULATOR_BOM.network_cost_per_node == pytest.approx(742.0, abs=20.0)
        assert SPACE_SIMULATOR_BOM.network_fraction == pytest.approx(0.44, abs=0.02)

    def test_peak_performance(self):
        # 294 x 5.06 Gflop/s just below 1.5 Tflop/s.
        assert SPACE_SIMULATOR_BOM.peak_gflops == pytest.approx(1487.6, rel=1e-3)
        assert SPACE_SIMULATOR_BOM.peak_gflops < 1500.0

    def test_loki_total(self):
        # Table 7: $51,379.
        assert LOKI_BOM.total_cost == pytest.approx(51_379.0)
        assert LOKI_BOM.cost_per_node == pytest.approx(3211.0, abs=1.0)

    def test_line_item_consistency_checked(self):
        with pytest.raises(ValueError):
            LineItem(10, 5.0, "bad math", 60.0, "node")

    def test_dollars_per_measured_mflops(self):
        d = SPACE_SIMULATOR_BOM.dollars_per_measured_mflops(757.1)
        assert d == pytest.approx(0.639, abs=0.002)

    def test_category_totals_sum(self):
        cats = SPACE_SIMULATOR_BOM.category_totals()
        assert sum(cats.values()) == pytest.approx(SPACE_SIMULATOR_BOM.total_cost)

    def test_validation(self):
        with pytest.raises(ValueError):
            BillOfMaterials("x", "2000", (), 0, 100.0)


class TestPower:
    def test_within_cooling_limit(self):
        assert SPACE_SIMULATOR_POWER.within_cooling_limit
        assert SPACE_SIMULATOR_POWER.total_watts == pytest.approx(33_840.0)

    def test_nodes_per_strip(self):
        # 15 A x 120 V x 0.8 = 1440 W -> 13 nodes at 110 W.
        assert SPACE_SIMULATOR_POWER.nodes_per_strip() == 13

    def test_strips_needed(self):
        assert SPACE_SIMULATOR_POWER.strips_needed() == 23

    def test_max_nodes_under_cooling(self):
        assert SPACE_SIMULATOR_POWER.max_nodes_under_cooling() >= 294

    def test_overloaded_budget_detected(self):
        big = PowerBudget(n_nodes=400, node_watts=110.0, switch_watts=1500.0, cooling_limit_watts=35_000.0)
        assert not big.within_cooling_limit

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerBudget(n_nodes=0, node_watts=1.0, switch_watts=0.0, cooling_limit_watts=1.0)


class TestReliability:
    def test_paper_counts_recorded(self):
        assert INSTALL_DEFECTS["disk drive"] == 6
        assert SERVICE_FAILURES_9MO["disk drive"] == 16
        assert SERVICE_FAILURES_9MO["fan"] == 1  # heat pipe eliminated CPU fans

    def test_disk_is_dominant_service_failure(self):
        # "The most common failure has been with disk drives."
        disks = SERVICE_FAILURES_9MO["disk drive"]
        assert disks > max(v for k, v in SERVICE_FAILURES_9MO.items() if k != "disk drive")

    def test_expected_failures_match_observation(self):
        model = FailureModel()
        expected = model.expected_failures()
        for comp in SS_COMPONENTS:
            assert expected[comp.kind] == pytest.approx(comp.service_failures, rel=0.05), comp.kind

    def test_simulation_reproduces_statistics(self):
        model = FailureModel()
        sims = [model.simulate(seed=s) for s in range(200)]
        mean_disks = np.mean([s.service_failures["disk drive"] for s in sims])
        assert mean_disks == pytest.approx(16.0, rel=0.2)
        mean_install = np.mean([s.install_defects["motherboard"] for s in sims])
        assert mean_install == pytest.approx(4.0, rel=0.3)

    def test_smart_predicts_majority_of_disk_failures(self):
        model = FailureModel()
        sims = [model.simulate(seed=s) for s in range(300)]
        total_disk = sum(s.service_failures["disk drive"] for s in sims)
        total_smart = sum(s.smart_predicted for s in sims)
        assert total_smart > 0.5 * total_disk  # "a majority ... predicted"

    def test_availability_high(self):
        model = FailureModel()
        assert model.expected_availability() > 0.999

    def test_distribution_shape(self):
        model = FailureModel()
        dist = model.failure_count_distribution("disk drive", trials=500)
        assert dist.shape == (500,)
        assert 10 < dist.mean() < 22

    def test_validation(self):
        model = FailureModel()
        with pytest.raises(ValueError):
            model.simulate(hours=0)
        with pytest.raises(ValueError):
            model.failure_count_distribution("gpu")


class TestMoore:
    def test_four_doublings_in_six_years(self):
        assert moore_factor(6.0) == pytest.approx(16.0)

    def test_disk_price_improvement(self):
        # $111/GB -> ~$1/GB: a factor ~7 beyond Moore's 16.
        loki = disk_dollars_per_gb(LOKI_BOM)
        ss = disk_dollars_per_gb(SPACE_SIMULATOR_BOM)
        assert loki == pytest.approx(110.8, rel=0.01)
        assert ss == pytest.approx(1.04, rel=0.01)
        assert (loki / ss) / 16.0 == pytest.approx(6.7, rel=0.05)

    def test_ram_price_improvement(self):
        # $7.35/MB -> 23 cents/MB: 2x beyond Moore.
        loki = ram_dollars_per_mb(LOKI_BOM)
        ss = ram_dollars_per_mb(SPACE_SIMULATOR_BOM)
        assert loki == pytest.approx(7.34, rel=0.01)
        assert ss == pytest.approx(0.23, abs=0.005)
        assert (loki / ss) / 16.0 == pytest.approx(2.0, rel=0.05)

    def test_npb_ratios(self):
        ratios = npb_improvement_ratios()
        assert ratios["BT"] == pytest.approx(12.6, abs=0.05)
        assert ratios["SP"] == pytest.approx(10.0, abs=0.05)
        assert ratios["LU"] == pytest.approx(15.5, abs=0.05)
        assert ratios["MG"] == pytest.approx(15.5, abs=0.05)

    def test_npb_price_performance_beats_moore(self):
        vs = npb_price_performance_vs_moore()
        # From the paper's own inputs (12.6x at half the per-processor
        # cost over 16x Moore): BT lands at ~1.58.  The prose says
        # "25%", which does not follow from its own numbers; the LU/MG
        # "close to a factor of two" claim does (15.5 x 2 / 16 = 1.94).
        assert vs["BT"] == pytest.approx(12.6 * 2 / 16, abs=0.01)
        assert vs["LU"] == pytest.approx(1.94, abs=0.06)
        assert vs["MG"] == pytest.approx(1.94, abs=0.06)
        assert all(v > 1.0 for v in vs.values())

    def test_nbody_close_to_moore_line(self):
        # 140x measured vs ~150x predicted.
        assert NBODY_LOKI_VS_SS.performance_ratio == pytest.approx(140.6, rel=0.01)
        assert NBODY_LOKI_VS_SS.price_ratio == pytest.approx(9.4, abs=0.05)
        assert NBODY_LOKI_VS_SS.predicted_ratio() == pytest.approx(150.0, rel=0.05)
        assert NBODY_LOKI_VS_SS.vs_moore() == pytest.approx(0.93, abs=0.04)


class TestTop500:
    def test_nov2002_rank(self):
        assert estimate_rank(665.1, TOP500_NOV2002) == 85

    def test_jun2003_rank(self):
        assert estimate_rank(757.1, TOP500_JUN2003) == 88

    def test_would_have_ranked_69_on_20th_list(self):
        assert estimate_rank(757.1, TOP500_NOV2002) in (68, 69, 70)

    def test_extremes(self):
        assert estimate_rank(50_000.0, TOP500_NOV2002) == 1
        assert estimate_rank(10.0, TOP500_NOV2002) == 501

    def test_price_performance_headline(self):
        cents = price_per_mflops_cents()
        assert cents == pytest.approx(63.9, abs=0.2)
        assert cents < 100.0  # first machine under $1/Mflop/s

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_rank(-5.0)
        with pytest.raises(ValueError):
            price_per_mflops_cents(gflops=0.0)
