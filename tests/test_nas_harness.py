"""Tests for repro.nas.harness: timed NPB execution."""

import pytest

from repro.nas.harness import RUNNERS, NpbReport, run_benchmark, run_suite


class TestRunBenchmark:
    def test_all_eight_class_s(self):
        for name in RUNNERS:
            report = run_benchmark(name, "S")
            assert report.verified, name
            assert report.seconds > 0
            assert report.mops > 0

    def test_summary_format(self):
        report = run_benchmark("CG", "S")
        s = report.summary()
        assert "CG class S" in s
        assert "SUCCESSFUL" in s
        assert "Mop/s" in s

    def test_case_insensitive(self):
        assert run_benchmark("cg", "S").benchmark == "CG"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            run_benchmark("ZZ", "S")
        with pytest.raises(ValueError):
            run_benchmark("CG", "Q")

    def test_report_mops_accounting(self):
        r = NpbReport("CG", "S", seconds=2.0, ops=4e6, verified=True)
        assert r.mops == pytest.approx(2.0)
        assert NpbReport("CG", "S", 0.0, 1.0, True).mops == 0.0


class TestRunSuite:
    def test_subset(self):
        reports = run_suite("S", benchmarks=("CG", "IS"))
        assert [r.benchmark for r in reports] == ["CG", "IS"]
        assert all(r.verified for r in reports)
