"""Tests for repro.core.tree and multipole: oct-tree construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BoundingBox, build_tree

UNIT_BOX = BoundingBox(np.zeros(3), 1.0)


def _cloud(n, seed=0, centrally_condensed=False):
    rng = np.random.default_rng(seed)
    if centrally_condensed:
        r = rng.random(n) ** 3 * 0.4
        direction = rng.standard_normal((n, 3))
        direction /= np.linalg.norm(direction, axis=1, keepdims=True)
        pos = 0.5 + r[:, None] * direction
    else:
        pos = rng.random((n, 3))
    return pos, rng.random(n) + 0.1


class TestBuild:
    def test_structure_invariants_uniform(self):
        pos, m = _cloud(500, seed=1)
        tree = build_tree(pos, m, bucket_size=8, box=UNIT_BOX)
        tree.validate()

    def test_structure_invariants_clustered(self):
        pos, m = _cloud(800, seed=2, centrally_condensed=True)
        tree = build_tree(pos, m, bucket_size=4, box=UNIT_BOX)
        tree.validate()

    def test_leaves_partition_particles(self):
        pos, m = _cloud(300, seed=3)
        tree = build_tree(pos, m, bucket_size=10, box=UNIT_BOX)
        leaf_total = int(tree.count[tree.leaf_ids].sum())
        assert leaf_total == tree.n_particles
        seen = np.zeros(tree.n_particles, dtype=bool)
        for leaf in tree.leaf_ids:
            sl = tree.particles_of(leaf)
            assert not seen[sl].any()
            seen[sl] = True
        assert seen.all()

    def test_single_particle(self):
        tree = build_tree(np.array([[0.5, 0.5, 0.5]]), np.array([2.0]), box=UNIT_BOX)
        assert tree.n_cells == 1
        assert tree.mass[0] == 2.0
        assert np.allclose(tree.com[0], [0.5, 0.5, 0.5])

    def test_bucket_size_one_separates_particles(self):
        pos = np.array([[0.1, 0.1, 0.1], [0.9, 0.9, 0.9], [0.1, 0.9, 0.1]])
        tree = build_tree(pos, np.ones(3), bucket_size=1, box=UNIT_BOX)
        assert (tree.count[tree.leaf_ids] == 1).all()

    def test_coincident_particles_stop_at_max_level(self):
        # Two particles at the same point can never be separated; the
        # build must terminate with an over-full deepest leaf.
        pos = np.array([[0.3, 0.3, 0.3], [0.3, 0.3, 0.3], [0.3, 0.3, 0.3]])
        tree = build_tree(pos, np.ones(3), bucket_size=1, box=UNIT_BOX)
        tree.validate()
        deepest = tree.level.max()
        assert tree.count[tree.level == deepest].max() == 3

    def test_hash_finds_every_cell(self):
        pos, m = _cloud(200, seed=4)
        tree = build_tree(pos, m, bucket_size=8, box=UNIT_BOX)
        for c in range(tree.n_cells):
            assert tree.find_cell(int(tree.cell_keys[c])) == c
        assert tree.find_cell(0b1_000_000_000_001) is None or True  # absent ok

    def test_morton_order_output(self):
        pos, m = _cloud(100, seed=5)
        tree = build_tree(pos, m, box=UNIT_BOX)
        assert np.all(np.diff(tree.keys.astype(np.float64)) >= 0)
        # order maps sorted back to input
        assert np.allclose(pos[tree.order], tree.positions)

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            build_tree(np.empty((0, 3)))
        with pytest.raises(ValueError):
            build_tree(np.zeros((5, 2)))
        with pytest.raises(ValueError):
            build_tree(np.random.rand(5, 3), np.ones(4))
        with pytest.raises(ValueError):
            build_tree(np.random.rand(5, 3), -np.ones(5))
        with pytest.raises(ValueError):
            build_tree(np.random.rand(5, 3), bucket_size=0)

    @given(st.integers(1, 400), st.integers(1, 64), st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_invariants_hold_for_random_builds(self, n, bucket, seed):
        rng = np.random.default_rng(seed)
        pos = rng.random((n, 3))
        tree = build_tree(pos, bucket_size=bucket, box=UNIT_BOX)
        tree.validate()
        assert int(tree.count[tree.leaf_ids].sum()) == n


class TestMultipoles:
    def test_root_mass_and_com(self):
        pos, m = _cloud(250, seed=6)
        tree = build_tree(pos, m, box=UNIT_BOX)
        assert tree.mass[0] == pytest.approx(m.sum())
        expected_com = (m[:, None] * pos).sum(axis=0) / m.sum()
        assert np.allclose(tree.com[0], expected_com)

    def test_cell_masses_sum_to_children(self):
        pos, m = _cloud(400, seed=7)
        tree = build_tree(pos, m, bucket_size=8, box=UNIT_BOX)
        for c in range(tree.n_cells):
            kids = tree.children_of(c)
            if kids.size:
                assert tree.mass[c] == pytest.approx(tree.mass[kids].sum())

    def test_quadrupole_traceless(self):
        pos, m = _cloud(300, seed=8, centrally_condensed=True)
        tree = build_tree(pos, m, box=UNIT_BOX)
        trace = tree.quad[:, 0] + tree.quad[:, 1] + tree.quad[:, 2]
        scale = np.abs(tree.quad).max() + 1e-30
        assert np.all(np.abs(trace) < 1e-10 * max(scale, 1.0))

    def test_quadrupole_matches_definition(self):
        pos, m = _cloud(64, seed=9)
        tree = build_tree(pos, m, bucket_size=64, box=UNIT_BOX)
        rel = tree.positions - tree.com[0]
        r2 = np.einsum("ij,ij->i", rel, rel)
        expect = np.empty(6)
        expect[0] = np.sum(tree.masses * (3 * rel[:, 0] ** 2 - r2))
        expect[1] = np.sum(tree.masses * (3 * rel[:, 1] ** 2 - r2))
        expect[2] = np.sum(tree.masses * (3 * rel[:, 2] ** 2 - r2))
        expect[3] = np.sum(tree.masses * 3 * rel[:, 0] * rel[:, 1])
        expect[4] = np.sum(tree.masses * 3 * rel[:, 0] * rel[:, 2])
        expect[5] = np.sum(tree.masses * 3 * rel[:, 1] * rel[:, 2])
        assert np.allclose(tree.quad[0], expect)

    def test_single_particle_cell_has_zero_quadrupole(self):
        tree = build_tree(np.array([[0.2, 0.7, 0.4]]), np.array([3.0]), box=UNIT_BOX)
        assert np.allclose(tree.quad[0], 0.0)

    def test_bmax_bounds_every_member(self):
        pos, m = _cloud(350, seed=10)
        tree = build_tree(pos, m, bucket_size=16, box=UNIT_BOX)
        for c in range(tree.n_cells):
            sl = tree.particles_of(c)
            d = np.linalg.norm(tree.positions[sl] - tree.com[c], axis=1)
            assert d.max() <= tree.bmax[c] + 1e-12, c

    def test_massless_particles_allowed(self):
        pos, _ = _cloud(50, seed=11)
        tree = build_tree(pos, np.zeros(50), box=UNIT_BOX)
        assert tree.mass[0] == 0.0
        assert np.isfinite(tree.com).all()
