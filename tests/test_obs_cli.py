"""Tests for the ``python -m repro.obs`` CLI, the HTML report, and the
counter/gauge round-trip through Chrome trace export (ISSUE 3).
"""

import json

import pytest

from repro.obs import (
    Recorder,
    chrome_trace,
    dumps_canonical,
    recorder_from_chrome_trace,
    svg_timeline,
    write_report,
)
from repro.obs.__main__ import main
from repro.simmpi import Comm, UniformCost, run

from tests.test_golden_trace import _simmpi_scenario


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    """Chrome trace of the golden 4-rank SimMPI scenario."""
    result = _simmpi_scenario()
    path = tmp_path_factory.mktemp("trace") / "run.json"
    path.write_text(json.dumps(chrome_trace(result.observer)))
    return str(path)


def _history_lines(values, name="bench.demo"):
    return "".join(
        json.dumps({"name": name, "seconds": v, "virtual_seconds": v}) + "\n"
        for v in values
    )


class TestChromeRoundTrip:
    def test_counters_and_gauges_survive(self):
        rec = Recorder()
        rec.add_span("work", 0.0, 1.0, track=0, cat="compute")
        rec.count("msgs", 3)
        rec.count("bytes", 1024)
        g = rec.gauge("depth")
        g.set(2.0)
        g.set(7.0)
        g.set(4.0)
        back = recorder_from_chrome_trace(chrome_trace(rec))
        assert back.spans == rec.spans
        assert {n: c.value for n, c in back.counters.items()} == {
            "msgs": 3.0, "bytes": 1024.0,
        }
        gb = back.gauges["depth"]
        assert (gb.value, gb.lo, gb.hi, gb.samples) == (4.0, 2.0, 7.0, 3)

    def test_unsampled_gauge_round_trips_without_infinities(self):
        rec = Recorder()
        rec.add_span("w", 0.0, 0.5)
        rec.gauge("never_set")  # lo/hi are the +-inf sentinels
        doc = chrome_trace(rec)
        dumps_canonical(doc)  # allow_nan=False: infinities would raise
        gb = recorder_from_chrome_trace(doc).gauges["never_set"]
        assert gb.samples == 0
        assert gb.value == 0.0

    def test_counter_events_are_chrome_ph_c(self):
        rec = Recorder()
        rec.add_span("w", 0.0, 1.0)
        rec.count("n", 5)
        counter_evs = [
            ev for ev in chrome_trace(rec)["traceEvents"] if ev["ph"] == "C"
        ]
        (ev,) = counter_evs
        assert ev["name"] == "n"
        assert ev["cat"] == "counter"
        assert ev["args"]["value"] == 5.0

    def test_engine_run_round_trips(self):
        def program(comm: Comm):
            yield comm.elapse(0.1)
            yield comm.allreduce(comm.rank)

        result = run(program, 3, UniformCost(latency_s=1e-5, mbytes_s=100.0))
        back = recorder_from_chrome_trace(chrome_trace(result.observer))
        assert sorted(back.spans, key=hash) == sorted(result.observer.spans, key=hash)
        assert back.counters.keys() == result.observer.counters.keys()


class TestAnalyzeCommand:
    def test_analyze_prints_all_sections(self, trace_file, capsys):
        assert main(["analyze", trace_file]) == 0
        out = capsys.readouterr().out
        assert "wait states" in out
        assert "coverage 100%" in out
        assert "load balance" in out
        assert "critical path" in out
        assert "counters:" in out and "simmpi.msgs_sent" in out

    def test_analyze_with_predictions(self, trace_file, tmp_path, capsys):
        pred = tmp_path / "pred.json"
        pred.write_text(json.dumps({"warmup": {"flops": 2e6, "mem_bytes": 1e5}}))
        assert main(["analyze", trace_file, "--predict", str(pred)]) == 0
        out = capsys.readouterr().out
        assert "perf-model attribution" in out
        assert "warmup" in out

    def test_rejects_non_object_predictions(self, trace_file, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2]")
        with pytest.raises(SystemExit):
            main(["analyze", trace_file, "--predict", str(bad)])


class TestReportCommand:
    def test_report_is_self_contained_html(self, trace_file, tmp_path, capsys):
        out_path = tmp_path / "report.html"
        hist = tmp_path / "history.jsonl"
        hist.write_text(_history_lines([1.0] * 5))
        assert main([
            "report", trace_file, "-o", str(out_path),
            "--title", "golden run", "--history", str(hist),
        ]) == 0
        html = out_path.read_text()
        assert html.lower().startswith("<!doctype html>")
        assert "golden run" in html
        assert "<svg" in html and "Critical path" in html
        assert "bench history" in html
        # Self-contained: no external fetches of any kind.
        assert "http://" not in html.replace("http://www.w3.org", "")
        assert "https://" not in html
        assert "<script" not in html and "<link" not in html

    def test_svg_timeline_has_lane_per_rank(self):
        result = _simmpi_scenario()
        svg = svg_timeline(
            result.observer.spans, elapsed=result.elapsed,
            path=[],
        )
        for rank in range(4):
            assert f"rank {rank}" in svg

    def test_write_report_default_sections(self, tmp_path):
        rec = Recorder()
        rec.add_span("solo", 0.0, 1.0, track=0, cat="compute")
        out = write_report(str(tmp_path / "r.html"), rec, title="t", elapsed=1.0)
        html = open(out).read()
        assert "Timeline" in html and "Load balance" in html


class TestCompareCommand:
    def test_clean_history_exits_zero(self, tmp_path, capsys):
        hist = tmp_path / "h.jsonl"
        hist.write_text(_history_lines([1.0] * 6))
        assert main(["compare", str(hist)]) == 0
        assert "OK: no regressions" in capsys.readouterr().out

    def test_ten_percent_slowdown_exits_one(self, tmp_path, capsys):
        hist = tmp_path / "h.jsonl"
        hist.write_text(_history_lines([1.0] * 5 + [1.10]))
        assert main(["compare", str(hist)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_virtual_seconds_metric_and_json_output(self, tmp_path, capsys):
        hist = tmp_path / "h.jsonl"
        hist.write_text(
            _history_lines([1.0] * 5 + [1.10]) + _history_lines([2.0] * 6, "other")
        )
        rc = main([
            "compare", str(hist), "--metric", "virtual_seconds", "--json",
        ])
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is False
        assert doc["metric"] == "virtual_seconds"
        statuses = {b["name"]: b["status"] for b in doc["benches"]}
        assert statuses == {"bench.demo": "regression", "other": "ok"}

    def test_threshold_is_tunable(self, tmp_path):
        hist = tmp_path / "h.jsonl"
        hist.write_text(_history_lines([1.0] * 5 + [1.10]))
        assert main(["compare", str(hist), "--threshold", "0.15"]) == 0
