"""Unit tests for the campaign result store, obs wiring, and failure
handling: the queryable-store contract (JSONL truth, sqlite
accelerator), dedupe counters on the instrumentation recorder, and
deterministic-failure shards becoming data instead of crashes.
"""

import json
import os

import pytest

from repro.campaign import (
    ClusterSpec,
    CosmologySpec,
    ResultStore,
    load_catalog,
    run_campaign,
    save_catalog,
    spec_from_dict,
    sweep,
)
from repro.obs import Recorder


class TestObsCounters:
    def test_duplicate_specs_report_dedupe_hits(self, tmp_path):
        """Acceptance: duplicate catalog entries → dedupe hits > 0 in
        the obs counters, not just the report."""
        rec = Recorder()
        catalog = [ClusterSpec(n_nodes=64), ClusterSpec(n_nodes=64),
                   ClusterSpec(n_nodes=64), ClusterSpec(n_nodes=128)]
        report = run_campaign(catalog, str(tmp_path / "c"), observer=rec)
        assert report.dedupe_hits == 2
        assert rec.counters["campaign.dedupe_hits"].value == 2
        assert rec.counters["campaign.computed"].value == 2
        assert rec.counters["campaign.shards"].value == 4

    def test_cache_hits_counted_on_rerun(self, tmp_path):
        catalog = [ClusterSpec(n_nodes=16)]
        run_campaign(catalog, str(tmp_path / "c"))
        rec = Recorder()
        run_campaign(catalog, str(tmp_path / "c"), observer=rec)
        assert rec.counters["campaign.cache_hits"].value == 1

    def test_campaign_and_shard_spans_recorded(self, tmp_path):
        rec = Recorder()
        run_campaign([ClusterSpec(n_nodes=16)], str(tmp_path / "c"), observer=rec)
        names = [s.name for s in rec.spans]
        assert "campaign" in names
        assert "shard:cluster" in names


class TestFailureShards:
    # omega_m + omega_l != 1 passes spec validation but the Cosmology
    # constructor rejects it at run time: a deterministic physics error.
    BAD = CosmologySpec(n_side=4, omega_m=0.4, omega_l=0.7)

    def test_failed_shard_becomes_data(self, tmp_path):
        report = run_campaign([self.BAD, ClusterSpec(n_nodes=16)], str(tmp_path / "c"))
        assert report.failed == 1
        assert report.computed == 1
        [error] = report.errors.values()
        assert "ValueError" in error

    def test_failed_shard_excluded_from_results_included_in_shards(self, tmp_path):
        root = tmp_path / "c"
        run_campaign([self.BAD, ClusterSpec(n_nodes=16)], str(root))
        store = ResultStore(str(root))
        assert len(store.load_results()) == 1
        rows = store.load_shards()
        assert [r["status"] for r in rows] == ["failed", "computed"]
        assert "ValueError" in rows[0]["error"]

    def test_failed_shard_retried_on_resume(self, tmp_path):
        root = tmp_path / "c"
        run_campaign([self.BAD], str(root))
        report = run_campaign([self.BAD], str(root))
        assert report.cache_hits == 0 and report.resume_hits == 0
        assert report.failed == 1  # failures are never cached


class TestResultStoreQuery:
    @pytest.fixture()
    def populated(self, tmp_path):
        root = tmp_path / "c"
        catalog = [
            *sweep(ClusterSpec(), n_nodes=[16, 32, 64]),
            CosmologySpec(n_side=4, a_final=0.12),
        ]
        run_campaign(catalog, str(root))
        return ResultStore(str(root))

    def test_query_all(self, populated):
        rows = populated.query()
        assert len(rows) == 4
        assert all({"fingerprint", "kind", "spec", "result"} <= set(r) for r in rows)

    def test_query_by_kind_and_limit(self, populated):
        assert len(populated.query(kind="cluster")) == 3
        assert len(populated.query(kind="cluster", limit=2)) == 2
        assert populated.query(kind="supernova") == []

    def test_query_round_trips_spec(self, populated):
        for row in populated.query(kind="cosmology"):
            spec = spec_from_dict(row["spec"])
            assert spec.kind == "cosmology"
            assert row["result"]["steps"] > 0

    def test_stale_index_rebuilt(self, populated):
        populated.query()  # builds index.sqlite
        assert os.path.exists(populated.db_path)
        # Make the JSONL newer than the index: the next query rebuilds.
        records = list(populated.load_results().values())[:1]
        populated.write_results(records)
        os.utime(populated.results_path)
        assert len(populated.query()) == 1

    def test_status_tallies(self, populated):
        status = populated.status()
        assert status["results"] == 4
        assert status["shards"] == 4
        assert status["by_status"]["computed"] == 4

    def test_empty_store(self, tmp_path):
        store = ResultStore(str(tmp_path / "nothing"))
        assert store.load_results() == {}
        assert store.query() == []
        assert store.status()["shards"] == 0


class TestCatalogRoundTrip:
    def test_save_and_load(self, tmp_path):
        path = str(tmp_path / "cat.jsonl")
        specs = [ClusterSpec(n_nodes=16), CosmologySpec(n_side=4)]
        save_catalog(specs, path)
        assert load_catalog(path) == specs

    def test_bad_line_reports_location(self, tmp_path):
        path = tmp_path / "cat.jsonl"
        path.write_text('{"kind": "cluster"}\n{"kind": "warp-drive"}\n')
        with pytest.raises(ValueError, match="cat.jsonl:2"):
            load_catalog(str(path))

    def test_dicts_accepted_in_catalogs(self, tmp_path):
        report = run_campaign(
            [{"kind": "cluster", "n_nodes": 16}], str(tmp_path / "c"),
        )
        assert report.computed == 1
