"""Tests for repro.core.integrator: leapfrog correctness."""

import numpy as np
import pytest

from repro.core import LeapfrogIntegrator, direct_accelerations, nbody_simulate, total_energy


def _two_body_circular():
    """Equal-mass binary on a circular orbit, G = 1."""
    m = np.array([0.5, 0.5])
    pos = np.array([[0.5, 0.0, 0.0], [-0.5, 0.0, 0.0]])
    # Circular orbit: force G m1 m2 / d^2 = 0.25 balances centripetal
    # m v^2 / r with r = d/2 = 0.5, so v = 0.5.
    v = 0.5
    vel = np.array([[0.0, v, 0.0], [0.0, -v, 0.0]])
    return pos, vel, m


def _direct_accel(masses, eps=0.0):
    def fn(x):
        return direct_accelerations(x, masses, eps=eps).accelerations

    return fn


class TestLeapfrog:
    def test_energy_conservation_two_body(self):
        pos, vel, m = _two_body_circular()
        integ = LeapfrogIntegrator(_direct_accel(m), pos, vel, m)
        _, _, e0 = total_energy(integ.positions, integ.velocities, m)
        integ.run(dt=0.01, n_steps=500)
        _, _, e1 = total_energy(integ.positions, integ.velocities, m)
        assert abs((e1 - e0) / e0) < 1e-4

    def test_circular_orbit_stays_circular(self):
        pos, vel, m = _two_body_circular()
        integ = LeapfrogIntegrator(_direct_accel(m), pos, vel, m)
        integ.run(dt=0.005, n_steps=1000)
        sep = np.linalg.norm(integ.positions[0] - integ.positions[1])
        assert sep == pytest.approx(1.0, rel=1e-3)

    def test_time_reversibility(self):
        pos, vel, m = _two_body_circular()
        integ = LeapfrogIntegrator(_direct_accel(m), pos.copy(), vel.copy(), m)
        integ.run(dt=0.01, n_steps=100)
        # Reverse velocities and integrate back.
        integ2 = LeapfrogIntegrator(_direct_accel(m), integ.positions.copy(), -integ.velocities, m)
        integ2.run(dt=0.01, n_steps=100)
        assert np.allclose(integ2.positions, pos, atol=1e-9)

    def test_second_order_convergence(self):
        pos, vel, m = _two_body_circular()

        def endpoint(dt, steps):
            integ = LeapfrogIntegrator(_direct_accel(m), pos.copy(), vel.copy(), m)
            integ.run(dt, steps)
            return integ.positions.copy()

        ref = endpoint(0.0005, 4000)
        err_coarse = np.abs(endpoint(0.004, 500) - ref).max()
        err_fine = np.abs(endpoint(0.002, 1000) - ref).max()
        ratio = err_coarse / err_fine
        assert 3.0 < ratio < 5.5  # ~4 for a second-order method

    def test_momentum_conserved(self):
        rng = np.random.default_rng(0)
        pos = rng.standard_normal((50, 3))
        vel = rng.standard_normal((50, 3)) * 0.1
        m = rng.random(50) + 0.5
        vel -= (m[:, None] * vel).sum(axis=0) / m.sum()
        integ = LeapfrogIntegrator(_direct_accel(m, eps=0.05), pos, vel, m)
        integ.run(dt=0.01, n_steps=50)
        p = (m[:, None] * integ.velocities).sum(axis=0)
        assert np.allclose(p, 0.0, atol=1e-10)

    def test_history_and_stats(self):
        pos, vel, m = _two_body_circular()
        integ = LeapfrogIntegrator(_direct_accel(m), pos, vel, m)
        stats = integ.run(dt=0.01, n_steps=10)
        assert len(stats) == 10
        assert integ.history[-1].time == pytest.approx(0.1)
        assert stats[0].kinetic > 0
        assert stats[0].max_accel > 0

    def test_suggest_dt_positive(self):
        pos, vel, m = _two_body_circular()
        integ = LeapfrogIntegrator(_direct_accel(m), pos, vel, m)
        assert integ.suggest_dt() > 0

    def test_validation(self):
        pos, vel, m = _two_body_circular()
        with pytest.raises(ValueError):
            LeapfrogIntegrator(_direct_accel(m), pos[:, :2], vel, m)
        integ = LeapfrogIntegrator(_direct_accel(m), pos, vel, m)
        with pytest.raises(ValueError):
            integ.step(dt=0.0)
        with pytest.raises(ValueError):
            integ.run(0.1, -1)


class TestTreeDriver:
    def test_nbody_simulate_conserves_energy(self):
        rng = np.random.default_rng(1)
        n = 150
        pos = rng.standard_normal((n, 3)) * 0.5
        vel = rng.standard_normal((n, 3)) * 0.05
        m = np.full(n, 1.0 / n)
        eps = 0.05
        _, _, e0 = total_energy(pos, vel, m, eps=eps)
        integ = nbody_simulate(pos, vel, m, dt=0.01, n_steps=20, theta=0.5, eps=eps)
        _, _, e1 = total_energy(integ.positions, integ.velocities, m, eps=eps)
        assert abs((e1 - e0) / abs(e0)) < 5e-3

    def test_driver_does_not_mutate_inputs(self):
        rng = np.random.default_rng(2)
        pos = rng.standard_normal((30, 3))
        vel = np.zeros((30, 3))
        m = np.ones(30)
        pos_copy = pos.copy()
        nbody_simulate(pos, vel, m, dt=0.01, n_steps=2, eps=0.1)
        assert np.array_equal(pos, pos_copy)
