"""Contract tests for the uniform benchmark records.

Every ``benchmarks/bench_*.py`` must expose ``main() -> dict`` built on
``benchmarks/_harness.py``, and the record it returns must validate
against ``benchmarks/schema.json``.  The cheap shape checks (module
exposes a callable ``main``, the schema file itself is well-formed, the
subset validator works, history appends are atomic) run in the default
suite; actually executing all 28 payloads is marked slow.
"""

import importlib.util
import json
import os
import sys

import pytest

BENCH_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "benchmarks")
BENCH_FILES = sorted(
    f for f in os.listdir(BENCH_DIR) if f.startswith("bench_") and f.endswith(".py")
)


def _load(filename):
    if BENCH_DIR not in sys.path:
        sys.path.insert(0, BENCH_DIR)
    name = f"_bench_records_{filename[:-3]}"
    spec = importlib.util.spec_from_file_location(name, os.path.join(BENCH_DIR, filename))
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


@pytest.fixture(scope="module")
def harness():
    if BENCH_DIR not in sys.path:
        sys.path.insert(0, BENCH_DIR)
    import _harness

    return _harness


def test_bench_files_found():
    assert len(BENCH_FILES) == 28


@pytest.mark.parametrize("filename", BENCH_FILES)
def test_exposes_main(filename):
    mod = _load(filename)
    assert callable(getattr(mod, "main", None)), f"{filename} has no main()"


class TestSchema:
    def test_schema_file_is_valid_json(self, harness):
        schema = harness.load_schema()
        assert schema["type"] == "object"
        assert schema["additionalProperties"] is False
        assert set(schema["required"]) <= set(schema["properties"])
        # Optional fields: "shards" (campaign benches attach the
        # breakdown), "ts" (append_history timestamps history lines),
        # "fleet" (the fleet runner stamps ledger lines).  Scalar bench
        # records keep the original required-only shape.
        assert set(schema["properties"]) - set(schema["required"]) == {"shards", "ts", "fleet"}

    def test_good_record_validates(self, harness):
        record = harness.bench_record(
            "unit_test", params={"n": 1}, seconds=0.5,
            virtual_seconds=2.0, counters={"x": 3},
        )
        assert harness.validate_record(record) == []

    @pytest.mark.parametrize("mutate,fragment", [
        (lambda r: r.pop("name"), "missing required"),
        (lambda r: r.update(name="Bad Name!"), "pattern"),
        (lambda r: r.update(seconds=-1.0), "minimum"),
        (lambda r: r.update(seconds="fast"), "expected type"),
        (lambda r: r.update(counters={"x": "lots"}), "expected type"),
        (lambda r: r.update(extra_field=1), "unexpected property"),
        (lambda r: r.update(schema_version=True), "expected type"),
    ])
    def test_bad_records_rejected(self, harness, mutate, fragment):
        record = harness.bench_record("unit_test", seconds=0.1)
        mutate(record)
        errors = harness.validate_record(record)
        assert errors and any(fragment in e for e in errors), errors

    def test_record_with_shards_validates(self, harness):
        record = harness.bench_record(
            "unit_test", seconds=0.1,
            shards=[
                {"fingerprint": "ab" * 16, "status": "computed",
                 "kind": "cluster", "seconds": 0.25},
                {"fingerprint": "cd" * 16, "status": "dedupe",
                 "kind": "cosmology"},  # per-shard seconds is optional
            ],
        )
        assert harness.validate_record(record) == []

    def test_record_without_shards_has_no_shards_key(self, harness):
        assert "shards" not in harness.bench_record("unit_test", seconds=0.1)

    @pytest.mark.parametrize("shard,fragment", [
        ({"fingerprint": "xyz", "status": "computed", "kind": "cluster"}, "pattern"),
        ({"fingerprint": "ab" * 16, "status": "teleported", "kind": "cluster"}, "pattern"),
        ({"fingerprint": "ab" * 16, "status": "computed", "kind": "cluster",
          "seconds": -1.0}, "minimum"),
        ({"fingerprint": "ab" * 16, "status": "computed"}, "missing required"),
        ({"fingerprint": "ab" * 16, "status": "computed", "kind": "cluster",
          "surprise": 1}, "unexpected property"),
        ("not-a-shard", "expected type"),
    ])
    def test_bad_shards_rejected_with_indexed_path(self, harness, shard, fragment):
        record = harness.bench_record(
            "unit_test", seconds=0.1,
            shards=[{"fingerprint": "ab" * 16, "status": "computed",
                     "kind": "cluster"}],
        )
        record["shards"].append(shard)
        errors = harness.validate_record(record)
        assert errors and any(fragment in e for e in errors), errors
        # The items check names the offending element, not just the list.
        assert any("shards[1]" in e for e in errors), errors

    def test_emit_writes_file(self, harness, tmp_path):
        record = harness.bench_record("unit_test", seconds=0.1)
        path = harness.emit(record, str(tmp_path))
        assert os.path.basename(path) == "BENCH_unit_test.json"
        with open(path) as fh:
            assert json.load(fh) == record

    def test_emit_noop_without_dir(self, harness, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_DIR", raising=False)
        assert harness.emit(harness.bench_record("unit_test", seconds=0.1)) is None


class TestAppendHistoryAtomicity:
    """The history append must be all-or-nothing: a bench run killed
    mid-write can never leave ``baseline.jsonl`` truncated or torn."""

    def _lines(self, path):
        with open(path) as fh:
            return [json.loads(line) for line in fh if line.strip()]

    def test_append_preserves_existing_and_timestamps(self, harness, tmp_path):
        path = str(tmp_path / "history.jsonl")
        harness.append_history(harness.bench_record("one", seconds=0.1), path)
        harness.append_history(harness.bench_record("two", seconds=0.2), path)
        lines = self._lines(path)
        assert [r["name"] for r in lines] == ["one", "two"]
        assert all("ts" in r for r in lines)

    def test_goes_through_temp_file_and_replace(self, harness, tmp_path, monkeypatch):
        path = str(tmp_path / "history.jsonl")
        harness.append_history(harness.bench_record("one", seconds=0.1), path)
        before = open(path).read()

        real_replace = os.replace
        seen = {}

        def spying_replace(src, dst):
            seen["src"], seen["dst"] = src, dst
            with open(src) as fh:
                seen["tmp_content"] = fh.read()
            real_replace(src, dst)

        monkeypatch.setattr(harness.os, "replace", spying_replace)
        harness.append_history(harness.bench_record("two", seconds=0.2), path)
        # The temp file already held old + new before the swap, so the
        # reader can never observe a half-written state.
        assert seen["dst"] == path and seen["src"] != path
        assert seen["tmp_content"].startswith(before)
        assert [r["name"] for r in self._lines(path)] == ["one", "two"]

    def test_failed_replace_leaves_original_intact(self, harness, tmp_path, monkeypatch):
        path = str(tmp_path / "history.jsonl")
        harness.append_history(harness.bench_record("one", seconds=0.1), path)
        before = open(path).read()

        def exploding_replace(src, dst):
            raise OSError("disk on fire")

        monkeypatch.setattr(harness.os, "replace", exploding_replace)
        with pytest.raises(OSError):
            harness.append_history(harness.bench_record("two", seconds=0.2), path)
        monkeypatch.undo()
        assert open(path).read() == before  # untouched
        assert not [f for f in os.listdir(tmp_path) if ".tmp." in f]  # cleaned up

    def test_heals_pre_atomic_torn_tail(self, harness, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text('{"name": "old", "ts": "t"}\n{"name": "torn", "half')
        harness.append_history(harness.bench_record("new", seconds=0.1), str(path))
        raw = path.read_text().splitlines()
        assert len(raw) == 3 and json.loads(raw[-1])["name"] == "new"
        # The torn line is quarantined on its own line, not fused with
        # the new record; load_history skips it as corrupt.
        with pytest.raises(json.JSONDecodeError):
            json.loads(raw[1])

    def test_noop_without_destination(self, harness, monkeypatch):
        monkeypatch.delenv(harness.HISTORY_ENV, raising=False)
        assert harness.append_history(harness.bench_record("x", seconds=0.1)) is None

    def test_directory_destination_gets_history_file(self, harness, tmp_path):
        out = harness.append_history(
            harness.bench_record("x", seconds=0.1), str(tmp_path),
        )
        assert out == str(tmp_path / "history.jsonl")
        assert os.path.exists(out)


@pytest.mark.slow
@pytest.mark.parametrize("filename", BENCH_FILES)
def test_main_record_validates(filename, harness, capsys):
    mod = _load(filename)
    record = mod.main()
    capsys.readouterr()  # swallow the CLI print
    assert harness.validate_record(record) == [], filename
    assert record["name"] in filename
    assert record["seconds"] > 0
