"""Contract tests for the uniform benchmark records.

Every ``benchmarks/bench_*.py`` must expose ``main() -> dict`` built on
``benchmarks/_harness.py``, and the record it returns must validate
against ``benchmarks/schema.json``.  The cheap shape checks (module
exposes a callable ``main``, the schema file itself is well-formed, the
subset validator works) run in the default suite; actually executing
all 24 payloads is marked slow.
"""

import importlib.util
import json
import os
import sys

import pytest

BENCH_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "benchmarks")
BENCH_FILES = sorted(
    f for f in os.listdir(BENCH_DIR) if f.startswith("bench_") and f.endswith(".py")
)


def _load(filename):
    if BENCH_DIR not in sys.path:
        sys.path.insert(0, BENCH_DIR)
    name = f"_bench_records_{filename[:-3]}"
    spec = importlib.util.spec_from_file_location(name, os.path.join(BENCH_DIR, filename))
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


@pytest.fixture(scope="module")
def harness():
    if BENCH_DIR not in sys.path:
        sys.path.insert(0, BENCH_DIR)
    import _harness

    return _harness


def test_bench_files_found():
    assert len(BENCH_FILES) == 24


@pytest.mark.parametrize("filename", BENCH_FILES)
def test_exposes_main(filename):
    mod = _load(filename)
    assert callable(getattr(mod, "main", None)), f"{filename} has no main()"


class TestSchema:
    def test_schema_file_is_valid_json(self, harness):
        schema = harness.load_schema()
        assert schema["type"] == "object"
        assert schema["additionalProperties"] is False
        assert set(schema["required"]) == set(schema["properties"])

    def test_good_record_validates(self, harness):
        record = harness.bench_record(
            "unit_test", params={"n": 1}, seconds=0.5,
            virtual_seconds=2.0, counters={"x": 3},
        )
        assert harness.validate_record(record) == []

    @pytest.mark.parametrize("mutate,fragment", [
        (lambda r: r.pop("name"), "missing required"),
        (lambda r: r.update(name="Bad Name!"), "pattern"),
        (lambda r: r.update(seconds=-1.0), "minimum"),
        (lambda r: r.update(seconds="fast"), "expected type"),
        (lambda r: r.update(counters={"x": "lots"}), "expected type"),
        (lambda r: r.update(extra_field=1), "unexpected property"),
        (lambda r: r.update(schema_version=True), "expected type"),
    ])
    def test_bad_records_rejected(self, harness, mutate, fragment):
        record = harness.bench_record("unit_test", seconds=0.1)
        mutate(record)
        errors = harness.validate_record(record)
        assert errors and any(fragment in e for e in errors), errors

    def test_emit_writes_file(self, harness, tmp_path):
        record = harness.bench_record("unit_test", seconds=0.1)
        path = harness.emit(record, str(tmp_path))
        assert os.path.basename(path) == "BENCH_unit_test.json"
        with open(path) as fh:
            assert json.load(fh) == record

    def test_emit_noop_without_dir(self, harness, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_DIR", raising=False)
        assert harness.emit(harness.bench_record("unit_test", seconds=0.1)) is None


@pytest.mark.slow
@pytest.mark.parametrize("filename", BENCH_FILES)
def test_main_record_validates(filename, harness, capsys):
    mod = _load(filename)
    record = mod.main()
    capsys.readouterr()  # swallow the CLI print
    assert harness.validate_record(record) == [], filename
    assert record["name"] in filename
    assert record["seconds"] > 0
