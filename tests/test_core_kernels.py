"""Tests for repro.core.kernels: the libm/Karp gravity micro-kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    interaction_kernel,
    measure_kernel_mflops,
    reciprocal_sqrt_karp,
    reciprocal_sqrt_libm,
)


class TestKarpRsqrt:
    def test_accuracy_across_magnitudes(self):
        x = np.logspace(-30, 30, 5000)
        got = reciprocal_sqrt_karp(x)
        want = 1.0 / np.sqrt(x)
        rel = np.abs(got - want) / want
        assert rel.max() < 1e-12

    def test_exact_powers_of_four(self):
        x = 4.0 ** np.arange(-10, 11)
        got = reciprocal_sqrt_karp(x)
        assert np.allclose(got, 2.0 ** -np.arange(-10, 11, dtype=float), rtol=1e-13)

    def test_odd_exponents(self):
        # Odd binary exponents exercise the 1/sqrt(2) fold.
        x = np.array([2.0, 8.0, 32.0, 0.5, 0.125])
        got = reciprocal_sqrt_karp(x)
        assert np.allclose(got, 1.0 / np.sqrt(x), rtol=1e-13)

    def test_subinterval_boundaries(self):
        # Mantissas at table-bin edges must not pick the wrong bin.
        m = 0.5 + np.arange(65) / 128.0
        m = m[m < 1.0]
        got = reciprocal_sqrt_karp(m)
        assert np.allclose(got, 1.0 / np.sqrt(m), rtol=1e-12)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            reciprocal_sqrt_karp(np.array([0.0]))
        with pytest.raises(ValueError):
            reciprocal_sqrt_karp(np.array([-1.0]))

    def test_scalar_like_input(self):
        got = reciprocal_sqrt_karp(np.array(9.0))
        assert got == pytest.approx(1.0 / 3.0, rel=1e-13)

    @given(st.floats(min_value=1e-100, max_value=1e100))
    @settings(max_examples=200, deadline=None)
    def test_property_relative_error(self, x):
        got = float(reciprocal_sqrt_karp(np.array([x]))[0])
        want = 1.0 / np.sqrt(x)
        assert abs(got - want) <= 1e-12 * want


class TestInteractionKernel:
    def test_libm_and_karp_agree(self):
        rng = np.random.default_rng(0)
        sources = rng.standard_normal((500, 3))
        masses = rng.random(500) + 0.1
        sink = np.array([0.1, -0.2, 0.3])
        a1, p1 = interaction_kernel(sink, sources, masses, eps=0.01, method="libm")
        a2, p2 = interaction_kernel(sink, sources, masses, eps=0.01, method="karp")
        assert np.allclose(a1, a2, rtol=1e-11)
        assert p1 == pytest.approx(p2, rel=1e-11)

    def test_matches_direct_two_body(self):
        sink = np.zeros(3)
        sources = np.array([[1.0, 0.0, 0.0]])
        masses = np.array([4.0])
        acc, pot = interaction_kernel(sink, sources, masses)
        assert np.allclose(acc, [4.0, 0.0, 0.0])  # toward the source
        assert pot == pytest.approx(-4.0)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            interaction_kernel(np.zeros(3), np.ones((1, 3)), np.ones(1), method="sse")

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            interaction_kernel(np.zeros(2), np.ones((1, 3)), np.ones(1))


class TestMeasurement:
    def test_measure_returns_positive_rate(self):
        timing = measure_kernel_mflops("libm", n_sources=256, repeats=3)
        assert timing.mflops > 0
        assert timing.interactions == 256 * 3
        assert timing.interactions_per_second > 0

    def test_both_methods_measurable(self):
        for method in ("libm", "karp"):
            t = measure_kernel_mflops(method, n_sources=128, repeats=2)
            assert t.method == method
            assert t.seconds > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            measure_kernel_mflops(repeats=0)
