"""Tests for repro.core.snapshot and driver checkpoint/restart."""

import os

import numpy as np
import pytest

from repro.core.snapshot import Snapshot, SnapshotError, read_snapshot, write_snapshot


class TestSnapshotRoundTrip:
    def test_arrays_and_meta_preserved(self, tmp_path):
        arrays = {
            "positions": np.random.default_rng(0).random((50, 3)),
            "ids": np.arange(50, dtype=np.int64),
        }
        write_snapshot(str(tmp_path), arrays, meta={"time": 1.5, "label": "x"})
        snap = read_snapshot(str(tmp_path))
        assert np.array_equal(snap["positions"], arrays["positions"])
        assert snap["ids"].dtype == np.int64
        assert snap.meta == {"time": 1.5, "label": "x"}

    def test_header_written(self, tmp_path):
        write_snapshot(str(tmp_path), {"a": np.zeros(3)})
        assert os.path.exists(tmp_path / "snapshot.json")
        assert os.path.exists(tmp_path / "a.npy")

    def test_overwrite(self, tmp_path):
        write_snapshot(str(tmp_path), {"a": np.zeros(3)}, meta={"v": 1})
        write_snapshot(str(tmp_path), {"a": np.ones(3)}, meta={"v": 2})
        snap = read_snapshot(str(tmp_path))
        assert snap.meta["v"] == 2
        assert snap["a"][0] == 1.0

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            write_snapshot(str(tmp_path), {})
        with pytest.raises(ValueError):
            write_snapshot(str(tmp_path), {"bad name": np.zeros(2)})


class TestCorruptionDetection:
    def test_missing_header(self, tmp_path):
        with pytest.raises(SnapshotError, match="header"):
            read_snapshot(str(tmp_path))

    def test_missing_array_file(self, tmp_path):
        write_snapshot(str(tmp_path), {"a": np.zeros(4)})
        os.remove(tmp_path / "a.npy")
        with pytest.raises(SnapshotError, match="missing"):
            read_snapshot(str(tmp_path))

    def test_corrupted_array_detected(self, tmp_path):
        write_snapshot(str(tmp_path), {"a": np.zeros(64)})
        # Flip bytes in the payload (past the .npy header).
        path = tmp_path / "a.npy"
        data = bytearray(path.read_bytes())
        data[-8:] = b"\xff" * 8
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotError, match="checksum"):
            read_snapshot(str(tmp_path))
        # ... but an unverified read returns the (corrupt) data.
        snap = read_snapshot(str(tmp_path), verify=False)
        assert isinstance(snap, Snapshot)

    def test_shape_mismatch_detected(self, tmp_path):
        write_snapshot(str(tmp_path), {"a": np.zeros(4)})
        np.save(tmp_path / "a.npy", np.zeros(5))
        with pytest.raises(SnapshotError, match="mismatch"):
            read_snapshot(str(tmp_path))


class TestDriverRestart:
    def test_comoving_restart_bit_exact(self, tmp_path):
        from repro.cosmology import ComovingSimulation, EDS, zeldovich_ics

        ics = zeldovich_ics(n_side=8, a_start=0.2, cosmology=EDS, seed=3)
        straight = ComovingSimulation(ics)
        for _ in range(6):
            straight.step(0.05)

        resumed = ComovingSimulation(ics)
        for _ in range(3):
            resumed.step(0.05)
        resumed.checkpoint(str(tmp_path / "ck"))
        restored = ComovingSimulation.restore(str(tmp_path / "ck"))
        assert restored.a == pytest.approx(resumed.a)
        for _ in range(3):
            restored.step(0.05)
        assert np.array_equal(restored.positions, straight.positions)
        assert np.array_equal(restored.velocities, straight.velocities)
        assert restored.steps_taken == 6

    def test_hydro_restart_bit_exact(self, tmp_path):
        from repro.sph import HydroSimulation

        rng = np.random.default_rng(1)
        pos = rng.random((120, 3))
        args = (pos, np.zeros((120, 3)), np.full(120, 1 / 120), np.ones(120))
        straight = HydroSimulation(*[a.copy() for a in args])
        for _ in range(4):
            straight.step(dt=1e-3)

        resumed = HydroSimulation(*[a.copy() for a in args])
        for _ in range(2):
            resumed.step(dt=1e-3)
        resumed.checkpoint(str(tmp_path / "hk"))
        restored = HydroSimulation.restore(str(tmp_path / "hk"))
        for _ in range(2):
            restored.step(dt=1e-3)
        assert np.array_equal(restored.positions, straight.positions)
        assert np.array_equal(restored.u, straight.u)
        assert restored.time == pytest.approx(straight.time)

    def test_wrong_kind_rejected(self, tmp_path):
        from repro.cosmology import ComovingSimulation
        from repro.sph import HydroSimulation

        rng = np.random.default_rng(2)
        sim = HydroSimulation(
            rng.random((30, 3)), np.zeros((30, 3)), np.ones(30), np.ones(30)
        )
        sim.checkpoint(str(tmp_path / "h"))
        with pytest.raises(SnapshotError):
            ComovingSimulation.restore(str(tmp_path / "h"))
