"""Tests for repro.core.cellcache: the persistent remote-cell cache."""

import numpy as np
import pytest

from repro.core import BoundingBox, CellCache, CellServer, keys_from_positions


class TestLRUSemantics:
    def test_get_hit_miss_counters(self):
        c = CellCache()
        c.insert(1, "a", branch_key=0, fingerprint=b"x")
        assert c.get(1) == "a"
        assert c.get(2) is None
        assert c.stats["hits"] == 1 and c.stats["misses"] == 1

    def test_capacity_evicts_lru(self):
        c = CellCache(capacity=2)
        c.insert(1, "a", branch_key=0, fingerprint=b"")
        c.insert(2, "b", branch_key=0, fingerprint=b"")
        c.get(1)  # 1 becomes most recently used
        c.insert(3, "c", branch_key=0, fingerprint=b"")
        assert c.get(2) is None  # 2 was LRU
        assert c.get(1) == "a" and c.get(3) == "c"
        assert c.stats["evictions"] == 1

    def test_reinsert_refreshes_without_evicting(self):
        c = CellCache(capacity=2)
        c.insert(1, "a", branch_key=0, fingerprint=b"")
        c.insert(2, "b", branch_key=0, fingerprint=b"")
        c.insert(1, "a2", branch_key=0, fingerprint=b"")
        assert len(c) == 2 and c.stats["evictions"] == 0
        assert c.peek(1) == "a2"

    def test_peek_touches_nothing(self):
        c = CellCache(capacity=2)
        c.insert(1, "a", branch_key=0, fingerprint=b"")
        c.insert(2, "b", branch_key=0, fingerprint=b"")
        c.peek(1)  # must NOT refresh 1's recency
        c.insert(3, "c", branch_key=0, fingerprint=b"")
        assert 1 not in c
        assert c.stats["hits"] == 0 and c.stats["misses"] == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            CellCache(capacity=0)

    def test_clear_preserves_counters(self):
        c = CellCache()
        c.insert(1, "a", branch_key=0, fingerprint=b"")
        c.get(1)
        c.clear()
        assert len(c) == 0 and c.stats["hits"] == 1


class TestInvalidation:
    def test_retain_valid_keeps_matching_drops_rest(self):
        c = CellCache()
        c.insert(10, "a", branch_key=1, fingerprint=b"f1")
        c.insert(11, "b", branch_key=1, fingerprint=b"f1")
        c.insert(20, "c", branch_key=2, fingerprint=b"f2")
        c.insert(30, "d", branch_key=3, fingerprint=b"f3")
        c.retain_valid({1: b"f1", 2: b"CHANGED"})  # 3 vanished entirely
        assert sorted(c.keys()) == [10, 11]
        assert c.stats["invalidated"] == 2

    def test_snapshot_stats_includes_size(self):
        c = CellCache()
        c.insert(1, "a", branch_key=0, fingerprint=b"")
        snap = c.snapshot_stats()
        assert snap["size"] == 1 and snap["inserts"] == 1


def _server(pos, masses, box):
    keys = keys_from_positions(pos, box)
    order = np.argsort(keys, kind="stable")
    return CellServer(keys[order], pos[order], masses[order], box), keys


class TestBranchFingerprint:
    def _setup(self, seed=5):
        rng = np.random.default_rng(seed)
        pos = rng.random((200, 3)) * 0.5 + 0.25
        masses = rng.random(200)
        box = BoundingBox(np.zeros(3), 1.0)
        return pos, masses, box

    def test_identical_data_identical_fingerprint(self):
        pos, masses, box = self._setup()
        s1, _ = _server(pos, masses, box)
        s2, _ = _server(pos.copy(), masses.copy(), box)
        from repro.core.keys import ROOT_KEY
        assert s1.branch_fingerprint(ROOT_KEY) == s2.branch_fingerprint(ROOT_KEY)

    def test_moved_particle_changes_fingerprint(self):
        pos, masses, box = self._setup()
        s1, _ = _server(pos, masses, box)
        pos2 = pos.copy()
        pos2[0] += 1e-9
        s2, _ = _server(pos2, masses, box)
        from repro.core.keys import ROOT_KEY
        assert s1.branch_fingerprint(ROOT_KEY) != s2.branch_fingerprint(ROOT_KEY)

    def test_prefix_state_matters(self):
        # Two servers sharing a cell's particle run but differing in the
        # particles *before* it: the records are differences of prefix
        # sums, so the fingerprints must differ too — this is what makes
        # "same fingerprint" imply bit-identical cached records.
        pos, masses, box = self._setup()
        s1, _ = _server(pos, masses, box)
        masses2 = masses.copy()
        # Perturb the mass of the first particle in Morton order.
        keys = keys_from_positions(pos, box)
        first = int(np.argsort(keys, kind="stable")[0])
        masses2[first] *= 1.0 + 1e-12
        s2, _ = _server(pos, masses2, box)
        # Pick a deep cell whose run excludes that first particle.
        from repro.core.cellserver import key_interval
        from repro.core.keys import ROOT_KEY, child_keys
        for ck in child_keys(ROOT_KEY):
            lo, _hi = key_interval(ck)
            s, e = s1.run_of(ck)
            if s > 0 and e > s:  # run starts after the perturbed particle
                assert s1.branch_fingerprint(ck) != s2.branch_fingerprint(ck)
                break
        else:  # pragma: no cover - distribution always fills >1 octant
            pytest.skip("all particles in one octant")
