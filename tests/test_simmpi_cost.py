"""Tests for repro.simmpi.cost: the virtual-time cost models."""

import numpy as np
import pytest

from repro.machine import Workload
from repro.network import LAM_O, MPICH_125
from repro.simmpi import SpaceSimulatorCost, UniformCost, ZeroCost, run


class TestZeroCost:
    def test_everything_free(self):
        cost = ZeroCost()
        assert cost.compute_time(0, Workload(1e12)) == 0.0
        assert cost.p2p_time(0, 1, 10**9) == 0.0
        assert cost.collective_time("allreduce", 64, 10**6) == 0.0

    def test_simulation_finishes_at_time_zero(self):
        def prog(comm):
            yield comm.compute(flops=1e15)
            yield comm.allreduce(1)

        assert run(prog, 4).elapsed == 0.0


class TestUniformCost:
    def test_compute_rate(self):
        cost = UniformCost(mflops=250.0)
        assert cost.compute_time(0, Workload(1e9)) == pytest.approx(4.0)

    def test_p2p_latency_bandwidth(self):
        cost = UniformCost(latency_s=1e-4, mbytes_s=50.0)
        assert cost.p2p_time(0, 1, 0) == pytest.approx(1e-4)
        assert cost.p2p_time(0, 1, 5_000_000) == pytest.approx(0.1001)

    def test_collective_scaling(self):
        cost = UniformCost(latency_s=1e-4, mbytes_s=50.0)
        # Tree collectives scale ~log2(P) in latency.
        t8 = cost.collective_time("bcast", 8, 0)
        t64 = cost.collective_time("bcast", 64, 0)
        assert t64 == pytest.approx(2.0 * t8)
        # Single rank: free.
        assert cost.collective_time("barrier", 1, 0) == 0.0

    def test_unknown_collective(self):
        with pytest.raises(ValueError):
            UniformCost().collective_time("allfoo", 4, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformCost(mbytes_s=0.0)
        with pytest.raises(ValueError):
            UniformCost(latency_s=-1.0)


class TestSpaceSimulatorCost:
    def test_compute_uses_node_roofline(self):
        cost = SpaceSimulatorCost()
        # 5.06e9 flops at peak = 1 s on the P4 node.
        assert cost.compute_time(0, Workload(5.06e9)) == pytest.approx(1.0, rel=1e-3)

    def test_small_message_is_stack_latency(self):
        cost = SpaceSimulatorCost()
        assert cost.p2p_time(0, 1, 0) == pytest.approx(83e-6, rel=0.01)

    def test_locality_hierarchy(self):
        # Same module < cross module (uncontended same) < cross trunk
        # under congestion.
        big = 4 * 1024 * 1024
        free = SpaceSimulatorCost(congestion=0)
        busy = SpaceSimulatorCost(congestion=15)
        same_module = free.p2p_time(0, 1, big)
        cross_module = free.p2p_time(0, 20, big)
        cross_trunk_busy = busy.p2p_time(0, 250, big)
        cross_module_busy = busy.p2p_time(0, 20, big)
        assert same_module <= cross_module + 1e-12
        assert cross_module_busy > cross_module
        # A cross-trunk path traverses backplanes AND the trunk: under
        # contention it can never beat the intra-switch path.
        assert cross_trunk_busy >= cross_module_busy

    def test_self_message_is_memory_copy(self):
        cost = SpaceSimulatorCost()
        t = cost.p2p_time(3, 3, 1_204_000_000)
        assert t == pytest.approx(1.0, rel=0.01)  # one second at STREAM rate

    def test_stack_choice_matters(self):
        big = 8 * 1024 * 1024
        lam = SpaceSimulatorCost(stack=LAM_O).p2p_time(0, 1, big)
        mpich = SpaceSimulatorCost(stack=MPICH_125).p2p_time(0, 1, big)
        assert mpich > 1.2 * lam

    def test_validation(self):
        with pytest.raises(ValueError):
            SpaceSimulatorCost(congestion=-1)


class TestEagerThreshold:
    def test_cost_model_can_force_rendezvous(self):
        # A cost model advertising eager_nbytes=0 makes every blocking
        # send wait for its receiver.
        class Rendezvous(UniformCost):
            eager_nbytes = 0

        def prog(comm):
            if comm.rank == 0:
                yield comm.send(b"tiny", dest=1)
                t = yield comm.now()
                return t
            yield comm.elapse(3.0)
            yield comm.recv(source=0)
            return None

        t_sender = run(prog, 2, Rendezvous()).returns[0]
        assert t_sender >= 3.0
        # Default engine threshold: the same tiny send is eager.
        t_eager = run(prog, 2, UniformCost()).returns[0]
        assert t_eager < 1.0
