"""Tests for repro.machine.specs: Table 5 / Table 6 catalogs."""

import pytest

from repro.machine import (
    ASCI_Q_NODE,
    FLOPS_PER_INTERACTION,
    TABLE5_PROCESSORS,
    TABLE6_MACHINES,
    MachineRecord,
    ProcessorSpec,
)


class TestProcessorSpec:
    def test_eleven_rows_as_in_paper(self):
        assert len(TABLE5_PROCESSORS) == 11

    def test_paper_endpoints(self):
        first, last = TABLE5_PROCESSORS[0], TABLE5_PROCESSORS[-1]
        assert first.name.startswith("533-MHz Alpha")
        assert first.measured_libm_mflops == pytest.approx(76.2)
        assert last.name.endswith("(icc)")
        assert last.measured_karp_mflops == pytest.approx(1357.0)

    def test_karp_speedup_largest_on_ev56(self):
        # The EV56's slow sqrt makes Karp's trick worth 3.2x there —
        # the largest win in the table.
        speedups = {p.name: p.karp_speedup for p in TABLE5_PROCESSORS}
        assert max(speedups, key=speedups.get) == "533-MHz Alpha EV56"
        assert speedups["533-MHz Alpha EV56"] == pytest.approx(3.18, rel=0.01)

    def test_icc_boost_over_gcc_on_p4(self):
        # Paper: "Note the significant improvement obtained through the
        # use of the Intel compiler, which enables the P4 SSE and SSE2".
        gcc = next(p for p in TABLE5_PROCESSORS if p.name == "2530-MHz Intel P4")
        icc = next(p for p in TABLE5_PROCESSORS if p.name == "2530-MHz Intel P4 (icc)")
        assert icc.measured_libm_mflops / gcc.measured_libm_mflops > 1.4
        assert icc.effective_flops_per_cycle > gcc.effective_flops_per_cycle

    def test_model_inverts_calibration(self):
        for p in TABLE5_PROCESSORS:
            assert p.model_mflops("karp") == pytest.approx(p.measured_karp_mflops, rel=1e-9)
            # libm model reproduces measurement wherever the implied
            # sqrt latency is positive (all but hardware-rsqrt cases).
            if p.implied_sqrtdiv_cycles > 0:
                assert p.model_mflops("libm") == pytest.approx(p.measured_libm_mflops, rel=1e-9)

    def test_model_linear_in_clock(self):
        p = TABLE5_PROCESSORS[0]
        doubled = ProcessorSpec(p.name, p.mhz * 2, p.measured_libm_mflops * 2, p.measured_karp_mflops * 2)
        assert doubled.model_mflops("karp") == pytest.approx(2 * p.model_mflops("karp"))

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            TABLE5_PROCESSORS[0].model_mflops("sse")

    def test_implied_sqrt_latency_physical(self):
        # Implied sqrt+div costs should be tens of cycles on the old
        # Alphas and small on chips with fast hardware paths.
        ev56 = TABLE5_PROCESSORS[0]
        assert 50 < ev56.implied_sqrtdiv_cycles < 250
        for p in TABLE5_PROCESSORS:
            assert p.implied_sqrtdiv_cycles >= 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ProcessorSpec("bad", -100.0, 10.0, 10.0)
        with pytest.raises(ValueError):
            ProcessorSpec("bad", 100.0, 0.0, 10.0)


class TestMachineRecords:
    def test_twelve_rows_spanning_decade(self):
        assert len(TABLE6_MACHINES) == 12
        years = [m.year for m in TABLE6_MACHINES]
        assert max(years) == 2003 and min(years) == 1993

    def test_space_simulator_row(self):
        ss = next(m for m in TABLE6_MACHINES if m.machine == "Space Simulator")
        assert ss.procs == 288
        assert ss.gflops == pytest.approx(179.7)
        assert ss.mflops_per_proc == pytest.approx(623.9)

    def test_rows_self_consistent(self):
        # gflops ~ procs * mflops_per_proc for every row (the paper
        # rounds each independently; allow 3%).
        for m in TABLE6_MACHINES:
            assert m.parallel_consistency == pytest.approx(1.0, rel=0.03), m.machine

    def test_per_proc_performance_grew_40x_over_decade(self):
        first = TABLE6_MACHINES[-1]  # Intel Delta, 1993
        best_2003 = max(m.mflops_per_proc for m in TABLE6_MACHINES if m.year == 2003)
        assert best_2003 / first.mflops_per_proc > 35

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineRecord(2000, "x", "y", 0, 1.0, 1.0)
        with pytest.raises(ValueError):
            MachineRecord(2000, "x", "y", 10, -1.0, 1.0)


class TestAsciQNode:
    def test_peak_per_cpu(self):
        # EV68 1.25 GHz, 2 flops/cycle = 2.5 Gflop/s peak.
        assert ASCI_Q_NODE.peak_gflops == pytest.approx(2.5)

    def test_more_memory_bandwidth_than_p4(self):
        from repro.machine import SPACE_SIMULATOR_NODE

        assert ASCI_Q_NODE.stream_mbytes_s > SPACE_SIMULATOR_NODE.stream_mbytes_s
