"""Tests for repro.simmpi.trace: execution traces and timelines."""

import numpy as np
import pytest

from repro.simmpi import (
    TraceEvent,
    UniformCost,
    render_timeline,
    run,
    utilization,
)


def _staggered(comm):
    """Rank 0 computes then sends; rank 1 waits then computes."""
    if comm.rank == 0:
        yield comm.compute(flops=1e9)
        yield comm.send(b"x" * 200_000, dest=1)
    else:
        data = yield comm.recv(source=0)
        yield comm.compute(flops=2e9)
        assert len(data) == 200_000


class TestTraceCapture:
    def test_compute_intervals_recorded(self):
        result = run(_staggered, 2, UniformCost(mflops=1000.0))
        compute = [e for e in result.trace if e.kind == "compute"]
        assert len(compute) == 2
        r0 = next(e for e in compute if e.rank == 0)
        assert r0.duration == pytest.approx(1.0)
        r1 = next(e for e in compute if e.rank == 1)
        assert r1.duration == pytest.approx(2.0)

    def test_blocked_interval_matches_stats(self):
        result = run(_staggered, 2, UniformCost(mflops=1000.0))
        blocked = [e for e in result.trace if e.kind == "blocked" and e.rank == 1]
        assert len(blocked) >= 1
        assert sum(e.duration for e in blocked) == pytest.approx(result.stats[1].blocked_s)
        assert "recv" in blocked[0].detail

    def test_intervals_within_elapsed(self):
        result = run(_staggered, 2, UniformCost(mflops=1000.0))
        for e in result.trace:
            assert 0.0 <= e.t_start <= e.t_end <= result.elapsed + 1e-12

    def test_trace_disabled(self):
        from repro.simmpi import Engine

        result = Engine([_staggered, _staggered], UniformCost(), record_trace=False).run()
        assert result.trace == []

    def test_event_validation(self):
        with pytest.raises(ValueError):
            TraceEvent(0, 1.0, 0.5, "compute")


class TestUtilization:
    def test_fractions_sum_to_one(self):
        result = run(_staggered, 2, UniformCost(mflops=1000.0))
        for row in utilization(result.trace, result.elapsed, 2):
            total = row["compute"] + row["blocked"] + row["idle"]
            assert total == pytest.approx(1.0, abs=1e-9)

    def test_waiting_rank_shows_blocked_time(self):
        result = run(_staggered, 2, UniformCost(mflops=1000.0))
        rows = utilization(result.trace, result.elapsed, 2)
        assert rows[1]["blocked"] > 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            utilization([], -1.0, 1)

    def test_zero_elapsed_empty_run_is_all_zero(self):
        # A run in which nothing happened has utilization 0.0 across
        # the board — not a ZeroDivisionError (pinned per ISSUE 3).
        rows = utilization([], 0.0, 3)
        assert rows == [
            {"rank": r, "compute": 0.0, "blocked": 0.0, "idle": 0.0}
            for r in range(3)
        ]
        # Zero-duration events at t=0 are equally harmless.
        trace = [TraceEvent(0, 0.0, 0.0, "compute")]
        assert utilization(trace, 0.0, 1) == [
            {"rank": 0, "compute": 0.0, "blocked": 0.0, "idle": 0.0}
        ]


class TestTimeline:
    def test_renders_rows_per_rank(self):
        result = run(_staggered, 2, UniformCost(mflops=1000.0))
        art = render_timeline(result.trace, result.elapsed, width=40)
        lines = art.splitlines()
        assert len(lines) == 3  # header + 2 ranks
        assert "#" in lines[1]
        assert "." in lines[2]  # rank 1 spent time blocked

    def test_empty_trace(self):
        assert render_timeline([], 1.0) == "(empty trace)"

    def test_validation(self):
        result = run(_staggered, 2, UniformCost(mflops=1000.0))
        with pytest.raises(ValueError):
            render_timeline(result.trace, 0.0)
        with pytest.raises(ValueError):
            render_timeline(result.trace, 1.0, width=5)

    def test_parallel_treecode_trace(self):
        # End-to-end: the parallel treecode produces a coherent trace.
        from repro.core import parallel_tree_accelerations
        from repro.simmpi import SpaceSimulatorCost

        rng = np.random.default_rng(0)
        pos = rng.random((600, 3))
        m = np.full(600, 1.0 / 600)
        result = parallel_tree_accelerations(pos, m, n_ranks=3, cost=SpaceSimulatorCost())
        assert len(result.sim.trace) > 0
        art = render_timeline(result.sim.trace, result.sim.elapsed)
        assert art.count("rank") == 3


def _utilization_reference(trace, elapsed, n_ranks):
    """The original O(ranks x events) implementation, kept verbatim as
    the oracle for the single-pass rewrite."""
    if elapsed <= 0:
        raise ValueError("elapsed must be positive")
    out = []
    for rank in range(n_ranks):
        compute = sum(e.duration for e in trace if e.rank == rank and e.kind == "compute")
        blocked = sum(e.duration for e in trace if e.rank == rank and e.kind == "blocked")
        out.append({
            "rank": rank,
            "compute": compute / elapsed,
            "blocked": blocked / elapsed,
            "idle": max(1.0 - (compute + blocked) / elapsed, 0.0),
        })
    return out


class TestUtilizationSinglePass:
    """The single-pass utilization must equal the old rescan exactly."""

    def test_matches_reference_on_engine_trace(self):
        result = run(_staggered, 2, UniformCost(mflops=1000.0))
        got = utilization(result.trace, result.elapsed, 2)
        assert got == _utilization_reference(result.trace, result.elapsed, 2)

    def test_matches_reference_on_synthetic_trace(self):
        rng = np.random.default_rng(5)
        trace = []
        for _ in range(500):
            t0 = float(rng.random())
            trace.append(TraceEvent(
                rank=int(rng.integers(-1, 6)),  # includes out-of-range ranks
                t_start=t0,
                t_end=t0 + float(rng.random()) * 0.1,
                kind=str(rng.choice(["compute", "blocked", "failed"])),
            ))
        got = utilization(trace, 1.2, 4)
        assert got == _utilization_reference(trace, 1.2, 4)

    def test_out_of_range_ranks_ignored(self):
        trace = [TraceEvent(rank=9, t_start=0.0, t_end=1.0, kind="compute")]
        rows = utilization(trace, 1.0, 2)
        assert all(r["compute"] == 0.0 for r in rows)
