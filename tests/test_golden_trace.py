"""Golden-trace regression suite.

Three fixed-seed scenarios — a 4-rank SimMPI communication pattern, a
small parallel treecode run, and a serial batched-kernel pipeline
(gravity + SPH) on a deterministic tick clock — are exported as
canonical JSON and compared byte-for-byte against fixtures committed
under ``tests/golden/``.  Floats are normalized to 9 significant digits
(:func:`repro.obs.dumps_canonical`), so the comparison is immune to
formatting and last-ulp noise but fails loudly on any semantic change
to engine scheduling, cost models, the treecode's communication
structure, or the batched kernels' span/counter emission.

To bless an intentional change:

    PYTHONPATH=src python tests/test_golden_trace.py --regen
"""

import itertools
import os

import numpy as np
import pytest

from repro.core import ParallelConfig, parallel_tree_accelerations, tree_accelerations
from repro.obs import NULL, NullRecorder, Recorder, chrome_trace, dumps_canonical, metrics
from repro.simmpi import Comm, SpaceSimulatorCost, run
from repro.simmpi.trace import utilization
from repro.sph import compute_sph_forces, density_sum, find_neighbors

GOLDEN_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "golden")

N_RANKS = 4


def _simmpi_scenario():
    """A deterministic 4-rank program exercising every span category."""

    def program(comm: Comm):
        rank = comm.rank
        yield comm.compute(flops=2e6 * (rank + 1), mem_bytes=1e5, label="warmup")
        yield comm.barrier()
        req = yield comm.isend(b"p" * (1000 * (rank + 1)), dest=(rank + 1) % comm.size)
        yield comm.recv(source=(rank - 1) % comm.size)
        yield comm.wait(req)
        total = yield comm.allreduce(rank)
        yield comm.elapse(1e-4 * (total + 1), label="postprocess")

    return run(program, N_RANKS, SpaceSimulatorCost())


def _treecode_scenario():
    """A small fixed-seed parallel treecode run (the Table 6 pipeline)."""
    rng = np.random.default_rng(123)
    r = rng.random(256) ** (1.0 / 3.0)
    d = rng.standard_normal((256, 3))
    d /= np.linalg.norm(d, axis=1, keepdims=True)
    pos = r[:, None] * d
    masses = np.full(256, 1.0 / 256)
    cfg = ParallelConfig(theta=0.8, eps=0.05, bucket_size=16)
    return parallel_tree_accelerations(
        pos, masses, n_ranks=N_RANKS, config=cfg, cost=SpaceSimulatorCost()
    ).sim


def _serial_pipeline(observer) -> None:
    """Run the serial batched gravity + SPH hot paths once."""
    rng = np.random.default_rng(7)
    pos = rng.random((192, 3))
    masses = np.full(192, 1.0 / 192)
    res = tree_accelerations(
        pos, masses, theta=0.7, eps=0.02, bucket_size=16,
        backend="numpy", observer=observer,
    )
    tree = res.tree
    h = np.full(192, 0.12)
    rho, neigh = density_sum(tree, h, backend="numpy", observer=observer)
    rho = np.maximum(rho, 1e-9)
    pressure = rho ** (5.0 / 3.0)
    cs = np.sqrt(5.0 / 3.0 * pressure / rho)
    compute_sph_forces(
        tree, neigh, rho=rho, pressure=pressure, sound_speed=cs,
        velocities=np.zeros((192, 3)), h=h,
        backend="numpy", observer=observer,
    )


def _serial_kernels_scenario() -> dict[str, str]:
    """The batched kernel spans/counters on a deterministic tick clock."""
    ticks = itertools.count()
    rec = Recorder(clock=lambda: float(next(ticks)))
    _serial_pipeline(rec)
    return {
        "trace": dumps_canonical(chrome_trace(rec, process_name="golden")),
        "metrics": dumps_canonical(metrics(rec)),
    }


def _artifacts(sim) -> dict[str, str]:
    """Canonical byte-stable artifacts for one simulation result."""
    doc = chrome_trace(sim.observer, process_name="golden")
    util = utilization(sim.trace, sim.elapsed, N_RANKS)
    return {
        "trace": dumps_canonical(doc),
        "utilization": dumps_canonical(
            {"elapsed": sim.elapsed, "ranks": util, "metrics": metrics(sim.observer)}
        ),
    }


SCENARIOS = {
    "simmpi_4rank": lambda: _artifacts(_simmpi_scenario()),
    "treecode_small": lambda: _artifacts(_treecode_scenario()),
    "serial_kernels": _serial_kernels_scenario,
}


def _fixture_path(scenario: str, artifact: str) -> str:
    return os.path.join(GOLDEN_DIR, f"{scenario}_{artifact}.json")


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_golden(scenario):
    produced = SCENARIOS[scenario]()
    for artifact, text in sorted(produced.items()):
        path = _fixture_path(scenario, artifact)
        with open(path) as fh:
            expected = fh.read()
        assert text == expected, (
            f"{scenario}/{artifact} drifted from {path}; if the change is "
            "intentional, regenerate with "
            "`PYTHONPATH=src python tests/test_golden_trace.py --regen`"
        )


def test_golden_runs_are_deterministic():
    a = _artifacts(_simmpi_scenario())
    b = _artifacts(_simmpi_scenario())
    assert a == b
    assert _serial_kernels_scenario() == _serial_kernels_scenario()


def test_serial_kernel_spans_present():
    ticks = itertools.count()
    rec = Recorder(clock=lambda: float(next(ticks)))
    _serial_pipeline(rec)
    names = {s.name for s in rec.spans}
    assert {
        "gravity.compute_forces", "gravity.traversal",
        "gravity.kernel.cells", "gravity.kernel.direct",
        "sph.neighbors", "sph.density", "sph.forces",
    } <= names
    kinds = {s.name: dict(s.args or ()) for s in rec.spans}
    assert kinds["gravity.kernel.cells"]["backend"] == "numpy"
    assert kinds["gravity.kernel.direct"]["backend"] == "numpy"
    m = metrics(rec)
    for key in ("gravity.p2p", "gravity.p2c", "gravity.groups",
                "gravity.mac_tests", "gravity.traversal_passes",
                "sph.neighbor_candidates", "sph.density_pairs",
                "sph.force_pairs"):
        assert m[f"counter.{key}"] > 0, key


def test_null_recorder_emits_nothing():
    """The disabled path through the batched kernels records zero state."""
    rec = NullRecorder()
    _serial_pipeline(rec)
    assert len(rec.spans) == 0
    assert metrics(rec) == {}
    # Only process metadata, never a kernel event.
    assert all(ev["ph"] == "M" for ev in chrome_trace(rec)["traceEvents"])
    # The default observer is the shared NULL singleton; the pipeline
    # above (and every run before it) must not have leaked state into it.
    _serial_pipeline(NULL)
    assert len(NULL.spans) == 0 and NULL.counters == {} and NULL.gauges == {}


def regen() -> None:
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for scenario, build in sorted(SCENARIOS.items()):
        arts = build()
        for artifact, text in sorted(arts.items()):
            path = _fixture_path(scenario, artifact)
            with open(path, "w") as fh:
                fh.write(text)
            print(f"wrote {path} ({len(text)} bytes)")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        regen()
    else:
        print(__doc__)
