"""Golden-trace regression suite.

Two fixed-seed scenarios — a 4-rank SimMPI communication pattern and a
small parallel treecode run — are exported as canonical Chrome-trace and
utilization JSON and compared byte-for-byte against fixtures committed
under ``tests/golden/``.  Floats are normalized to 9 significant digits
(:func:`repro.obs.dumps_canonical`), so the comparison is immune to
formatting and last-ulp noise but fails loudly on any semantic change
to engine scheduling, cost models, or the treecode's communication
structure.

To bless an intentional change:

    PYTHONPATH=src python tests/test_golden_trace.py --regen
"""

import os

import numpy as np
import pytest

from repro.core import ParallelConfig, parallel_tree_accelerations
from repro.obs import chrome_trace, dumps_canonical, metrics
from repro.simmpi import Comm, SpaceSimulatorCost, run
from repro.simmpi.trace import utilization

GOLDEN_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "golden")

N_RANKS = 4


def _simmpi_scenario():
    """A deterministic 4-rank program exercising every span category."""

    def program(comm: Comm):
        rank = comm.rank
        yield comm.compute(flops=2e6 * (rank + 1), mem_bytes=1e5, label="warmup")
        yield comm.barrier()
        req = yield comm.isend(b"p" * (1000 * (rank + 1)), dest=(rank + 1) % comm.size)
        yield comm.recv(source=(rank - 1) % comm.size)
        yield comm.wait(req)
        total = yield comm.allreduce(rank)
        yield comm.elapse(1e-4 * (total + 1), label="postprocess")

    return run(program, N_RANKS, SpaceSimulatorCost())


def _treecode_scenario():
    """A small fixed-seed parallel treecode run (the Table 6 pipeline)."""
    rng = np.random.default_rng(123)
    r = rng.random(256) ** (1.0 / 3.0)
    d = rng.standard_normal((256, 3))
    d /= np.linalg.norm(d, axis=1, keepdims=True)
    pos = r[:, None] * d
    masses = np.full(256, 1.0 / 256)
    cfg = ParallelConfig(theta=0.8, eps=0.05, bucket_size=16)
    return parallel_tree_accelerations(
        pos, masses, n_ranks=N_RANKS, config=cfg, cost=SpaceSimulatorCost()
    ).sim


def _artifacts(sim) -> dict[str, str]:
    """Canonical byte-stable artifacts for one simulation result."""
    doc = chrome_trace(sim.observer, process_name="golden")
    util = utilization(sim.trace, sim.elapsed, N_RANKS)
    return {
        "trace": dumps_canonical(doc),
        "utilization": dumps_canonical(
            {"elapsed": sim.elapsed, "ranks": util, "metrics": metrics(sim.observer)}
        ),
    }


SCENARIOS = {
    "simmpi_4rank": _simmpi_scenario,
    "treecode_small": _treecode_scenario,
}


def _fixture_path(scenario: str, artifact: str) -> str:
    return os.path.join(GOLDEN_DIR, f"{scenario}_{artifact}.json")


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
@pytest.mark.parametrize("artifact", ["trace", "utilization"])
def test_golden(scenario, artifact):
    produced = _artifacts(SCENARIOS[scenario]())[artifact]
    path = _fixture_path(scenario, artifact)
    with open(path) as fh:
        expected = fh.read()
    assert produced == expected, (
        f"{scenario}/{artifact} drifted from {path}; if the change is "
        "intentional, regenerate with "
        "`PYTHONPATH=src python tests/test_golden_trace.py --regen`"
    )


def test_golden_runs_are_deterministic():
    a = _artifacts(_simmpi_scenario())
    b = _artifacts(_simmpi_scenario())
    assert a == b


def regen() -> None:
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for scenario, build in sorted(SCENARIOS.items()):
        arts = _artifacts(build())
        for artifact, text in sorted(arts.items()):
            path = _fixture_path(scenario, artifact)
            with open(path, "w") as fh:
                fh.write(text)
            print(f"wrote {path} ({len(text)} bytes)")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        regen()
    else:
        print(__doc__)
