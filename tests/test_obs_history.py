"""Tests for repro.obs.history: rolling baselines and the regression gate.

The headline acceptance check from ISSUE 3: on a synthetic history
where the latest run is 10% slower, ``compare_history`` flags exactly
that bench; on the unmodified history it flags nothing.  The harness
side (``benchmarks/_harness.append_history``) is tested against a
temporary ``REPRO_BENCH_HISTORY`` target.
"""

import json
import os
import sys

import pytest

from repro.obs import compare_history, format_comparison_report, load_history, robust_baseline

BENCH_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "benchmarks"
)


def _entries(name, values, metric="seconds", **extra):
    return [{"name": name, metric: v, **extra} for v in values]


class TestRobustBaseline:
    def test_median_and_mad_sigma(self):
        med, sigma = robust_baseline([1.0, 1.2, 0.9, 1.1, 1.0])
        assert med == 1.0
        assert sigma == pytest.approx(1.4826 * 0.1)

    def test_even_sample_median(self):
        med, sigma = robust_baseline([1.0, 2.0])
        assert med == 1.5
        assert sigma == pytest.approx(1.4826 * 0.5)

    def test_deterministic_metric_has_zero_sigma(self):
        med, sigma = robust_baseline([0.5, 0.5, 0.5])
        assert (med, sigma) == (0.5, 0.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            robust_baseline([])


class TestCompareHistory:
    def test_detects_ten_percent_slowdown(self):
        clean = _entries("treecode", [1.0, 1.0, 1.0, 1.0, 1.0])
        report = compare_history(clean + _entries("treecode", [1.10]))
        (row,) = report.rows
        assert row.status == "regression"
        assert row.delta == pytest.approx(0.10)
        assert not report.ok
        assert "REGRESSION" in format_comparison_report(report)

    def test_unmodified_history_is_clean(self):
        report = compare_history(_entries("treecode", [1.0] * 6))
        (row,) = report.rows
        assert row.status == "ok"
        assert report.ok
        assert "OK: no regressions" in format_comparison_report(report)

    def test_improvement_flagged_but_not_failing(self):
        report = compare_history(_entries("npb.ep", [2.0] * 5 + [1.0]))
        (row,) = report.rows
        assert row.status == "improvement"
        assert report.ok

    def test_noise_model_blocks_false_positive(self):
        # Latest is +8% over the median, past the 5% threshold, but the
        # baseline itself is noisy: 3 robust sigmas gate it to "ok".
        noisy = _entries("wall", [1.0, 1.2, 0.9, 1.1, 1.0, 1.08])
        (row,) = compare_history(noisy).rows
        assert row.status == "ok"
        # The same excursion on a deterministic baseline is a regression.
        exact = _entries("virt", [1.0] * 5 + [1.08])
        (row,) = compare_history(exact).rows
        assert row.status == "regression"

    def test_rolling_window_forgets_ancient_runs(self):
        # Ancient slow runs fall outside window=3; the recent fast
        # baseline is what the (slow again) latest run compares against.
        values = [2.0, 2.0, 2.0, 1.0, 1.0, 1.0, 1.4]
        (row,) = compare_history(_entries("b", values), window=3).rows
        assert row.baseline == 1.0
        assert row.status == "regression"

    def test_single_run_is_skipped(self):
        (row,) = compare_history(_entries("once", [1.0])).rows
        assert row.status == "skipped"

    def test_counter_metric_and_nonpositive_exclusion(self):
        entries = [
            {"name": "b", "seconds": 0.1, "virtual_seconds": 0.0,
             "counters": {"ops": 100.0}}
            for _ in range(5)
        ] + [
            {"name": "b", "seconds": 0.1, "virtual_seconds": 0.0,
             "counters": {"ops": 120.0}}
        ]
        (row,) = compare_history(entries, metric="counters.ops").rows
        assert row.status == "regression"  # +20% in the counter
        # virtual_seconds is 0 on every run -> no comparable runs at all.
        assert compare_history(entries, metric="virtual_seconds").rows == []

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            compare_history([], threshold=0.0)
        with pytest.raises(ValueError):
            compare_history([], window=0)

    def test_per_bench_isolation(self):
        mixed = (
            _entries("fast", [1.0] * 6)
            + _entries("slow", [1.0] * 5 + [1.5])
        )
        report = compare_history(mixed)
        assert {r.name: r.status for r in report.rows} == {
            "fast": "ok", "slow": "regression",
        }
        assert [r.name for r in report.regressions] == ["slow"]


class TestLoadHistory:
    def test_skips_blank_and_corrupt_lines(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text(
            json.dumps({"name": "a", "seconds": 1.0}) + "\n"
            "\n"
            "{not json\n"
            '"just a string"\n'
            + json.dumps({"seconds": 2.0}) + "\n"  # no name -> skipped
            + json.dumps({"name": "b", "seconds": 2.0}) + "\n"
        )
        entries = load_history(str(path))
        assert [e["name"] for e in entries] == ["a", "b"]


class TestHarnessAppendHistory:
    @pytest.fixture()
    def harness(self):
        if BENCH_DIR not in sys.path:
            sys.path.insert(0, BENCH_DIR)
        import _harness

        return _harness

    def test_appends_jsonl_with_timestamp(self, harness, tmp_path):
        path = tmp_path / "h.jsonl"
        record = {"name": "bench.x", "seconds": 1.25}
        assert harness.append_history(record, str(path)) == str(path)
        harness.append_history(record, str(path))
        entries = load_history(str(path))
        assert len(entries) == 2
        assert entries[0]["name"] == "bench.x"
        assert "ts" in entries[0]
        assert record == {"name": "bench.x", "seconds": 1.25}  # input untouched

    def test_directory_target_gets_default_filename(self, harness, tmp_path):
        out = harness.append_history({"name": "y", "seconds": 1.0}, str(tmp_path))
        assert out == str(tmp_path / "history.jsonl")
        assert os.path.exists(out)

    def test_env_variable_default(self, harness, tmp_path, monkeypatch):
        target = tmp_path / "envhist.jsonl"
        monkeypatch.setenv(harness.HISTORY_ENV, str(target))
        assert harness.append_history({"name": "z", "seconds": 1.0}) == str(target)
        assert load_history(str(target))[0]["name"] == "z"

    def test_noop_without_destination(self, harness, monkeypatch):
        monkeypatch.delenv(harness.HISTORY_ENV, raising=False)
        assert harness.append_history({"name": "q", "seconds": 1.0}) is None

    def test_run_main_appends_history(self, harness, tmp_path, monkeypatch):
        target = tmp_path / "run.jsonl"
        monkeypatch.setenv(harness.HISTORY_ENV, str(target))
        monkeypatch.delenv("REPRO_BENCH_DIR", raising=False)
        record = harness.run_main(
            "unit.history", lambda: 41 + 1, virtual_seconds=0.5, quiet=True
        )
        (entry,) = load_history(str(target))
        assert entry["name"] == "unit.history"
        assert entry["virtual_seconds"] == 0.5
        assert entry["seconds"] == record["seconds"]
