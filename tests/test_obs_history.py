"""Tests for repro.obs.history: rolling baselines and the regression gate.

The headline acceptance check from ISSUE 3: on a synthetic history
where the latest run is 10% slower, ``compare_history`` flags exactly
that bench; on the unmodified history it flags nothing.  The harness
side (``benchmarks/_harness.append_history``) is tested against a
temporary ``REPRO_BENCH_HISTORY`` target.
"""

import json
import os
import sys

import pytest

from repro.obs import (
    DEFAULT_FLEET_GATES,
    MetricGate,
    compare_history,
    compare_history_multi,
    format_comparison_report,
    format_multi_report,
    load_history,
    parse_gate_spec,
    robust_baseline,
)
from repro.obs.history import _metric_value

BENCH_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "benchmarks"
)


def _entries(name, values, metric="seconds", **extra):
    return [{"name": name, metric: v, **extra} for v in values]


class TestRobustBaseline:
    def test_median_and_mad_sigma(self):
        med, sigma = robust_baseline([1.0, 1.2, 0.9, 1.1, 1.0])
        assert med == 1.0
        assert sigma == pytest.approx(1.4826 * 0.1)

    def test_even_sample_median(self):
        med, sigma = robust_baseline([1.0, 2.0])
        assert med == 1.5
        assert sigma == pytest.approx(1.4826 * 0.5)

    def test_deterministic_metric_has_zero_sigma(self):
        med, sigma = robust_baseline([0.5, 0.5, 0.5])
        assert (med, sigma) == (0.5, 0.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            robust_baseline([])


class TestCompareHistory:
    def test_detects_ten_percent_slowdown(self):
        clean = _entries("treecode", [1.0, 1.0, 1.0, 1.0, 1.0])
        report = compare_history(clean + _entries("treecode", [1.10]))
        (row,) = report.rows
        assert row.status == "regression"
        assert row.delta == pytest.approx(0.10)
        assert not report.ok
        assert "REGRESSION" in format_comparison_report(report)

    def test_unmodified_history_is_clean(self):
        report = compare_history(_entries("treecode", [1.0] * 6))
        (row,) = report.rows
        assert row.status == "ok"
        assert report.ok
        assert "OK: no regressions" in format_comparison_report(report)

    def test_improvement_flagged_but_not_failing(self):
        report = compare_history(_entries("npb.ep", [2.0] * 5 + [1.0]))
        (row,) = report.rows
        assert row.status == "improvement"
        assert report.ok

    def test_noise_model_blocks_false_positive(self):
        # Latest is +8% over the median, past the 5% threshold, but the
        # baseline itself is noisy: 3 robust sigmas gate it to "ok".
        noisy = _entries("wall", [1.0, 1.2, 0.9, 1.1, 1.0, 1.08])
        (row,) = compare_history(noisy).rows
        assert row.status == "ok"
        # The same excursion on a deterministic baseline is a regression.
        exact = _entries("virt", [1.0] * 5 + [1.08])
        (row,) = compare_history(exact).rows
        assert row.status == "regression"

    def test_rolling_window_forgets_ancient_runs(self):
        # Ancient slow runs fall outside window=3; the recent fast
        # baseline is what the (slow again) latest run compares against.
        values = [2.0, 2.0, 2.0, 1.0, 1.0, 1.0, 1.4]
        (row,) = compare_history(_entries("b", values), window=3).rows
        assert row.baseline == 1.0
        assert row.status == "regression"

    def test_single_run_is_skipped(self):
        (row,) = compare_history(_entries("once", [1.0])).rows
        assert row.status == "skipped"

    def test_counter_metric_and_nonpositive_exclusion(self):
        entries = [
            {"name": "b", "seconds": 0.1, "virtual_seconds": 0.0,
             "counters": {"ops": 100.0}}
            for _ in range(5)
        ] + [
            {"name": "b", "seconds": 0.1, "virtual_seconds": 0.0,
             "counters": {"ops": 120.0}}
        ]
        (row,) = compare_history(entries, metric="counters.ops").rows
        assert row.status == "regression"  # +20% in the counter
        # virtual_seconds is 0 on every run -> no comparable runs at all.
        assert compare_history(entries, metric="virtual_seconds").rows == []

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            compare_history([], threshold=0.0)
        with pytest.raises(ValueError):
            compare_history([], window=0)

    def test_per_bench_isolation(self):
        mixed = (
            _entries("fast", [1.0] * 6)
            + _entries("slow", [1.0] * 5 + [1.5])
        )
        report = compare_history(mixed)
        assert {r.name: r.status for r in report.rows} == {
            "fast": "ok", "slow": "regression",
        }
        assert [r.name for r in report.regressions] == ["slow"]


class TestLoadHistory:
    def test_skips_blank_and_corrupt_lines(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text(
            json.dumps({"name": "a", "seconds": 1.0}) + "\n"
            "\n"
            "{not json\n"
            '"just a string"\n'
            + json.dumps({"seconds": 2.0}) + "\n"  # no name -> skipped
            + json.dumps({"name": "b", "seconds": 2.0}) + "\n"
        )
        entries = load_history(str(path))
        assert [e["name"] for e in entries] == ["a", "b"]


class TestHarnessAppendHistory:
    @pytest.fixture()
    def harness(self):
        if BENCH_DIR not in sys.path:
            sys.path.insert(0, BENCH_DIR)
        import _harness

        return _harness

    def test_appends_jsonl_with_timestamp(self, harness, tmp_path):
        path = tmp_path / "h.jsonl"
        record = {"name": "bench.x", "seconds": 1.25}
        assert harness.append_history(record, str(path)) == str(path)
        harness.append_history(record, str(path))
        entries = load_history(str(path))
        assert len(entries) == 2
        assert entries[0]["name"] == "bench.x"
        assert "ts" in entries[0]
        assert record == {"name": "bench.x", "seconds": 1.25}  # input untouched

    def test_directory_target_gets_default_filename(self, harness, tmp_path):
        out = harness.append_history({"name": "y", "seconds": 1.0}, str(tmp_path))
        assert out == str(tmp_path / "history.jsonl")
        assert os.path.exists(out)

    def test_env_variable_default(self, harness, tmp_path, monkeypatch):
        target = tmp_path / "envhist.jsonl"
        monkeypatch.setenv(harness.HISTORY_ENV, str(target))
        assert harness.append_history({"name": "z", "seconds": 1.0}) == str(target)
        assert load_history(str(target))[0]["name"] == "z"

    def test_noop_without_destination(self, harness, monkeypatch):
        monkeypatch.delenv(harness.HISTORY_ENV, raising=False)
        assert harness.append_history({"name": "q", "seconds": 1.0}) is None

    def test_run_main_appends_history(self, harness, tmp_path, monkeypatch):
        target = tmp_path / "run.jsonl"
        monkeypatch.setenv(harness.HISTORY_ENV, str(target))
        monkeypatch.delenv("REPRO_BENCH_DIR", raising=False)
        record = harness.run_main(
            "unit.history", lambda: 41 + 1, virtual_seconds=0.5, quiet=True
        )
        (entry,) = load_history(str(target))
        assert entry["name"] == "unit.history"
        assert entry["virtual_seconds"] == 0.5
        assert entry["seconds"] == record["seconds"]


class TestDottedMetricPaths:
    """Regression suite for the ``_metric_value`` dotted-path fix:
    bench counters are a *flat* ``str -> float`` map whose keys may
    themselves contain dots (``cellcache.hit_rate``), so a flat key
    must win before any nested descent is attempted."""

    def test_flat_dotted_counter_key_resolves(self):
        entry = {"name": "b", "counters": {"cellcache.hit_rate": 0.9}}
        assert _metric_value(entry, "counters.cellcache.hit_rate") == 0.9

    def test_nested_mapping_still_resolves(self):
        entry = {"name": "b", "counters": {"cellcache": {"hit_rate": 0.8}}}
        assert _metric_value(entry, "counters.cellcache.hit_rate") == 0.8

    def test_flat_key_wins_over_nested_descent(self):
        entry = {"name": "b", "counters": {
            "cellcache.hit_rate": 0.9, "cellcache": {"hit_rate": 0.1},
        }}
        assert _metric_value(entry, "counters.cellcache.hit_rate") == 0.9

    def test_missing_and_non_numeric_yield_none(self):
        assert _metric_value({"name": "b"}, "counters.x") is None
        assert _metric_value({"counters": {"x": "fast"}}, "counters.x") is None
        assert _metric_value({"counters": {"x": True}}, "counters.x") is None
        assert _metric_value({"counters": 3.0}, "counters.x") is None

    def test_compare_history_gates_on_dotted_counter(self):
        entries = [
            {"name": "b", "counters": {"cellcache.hit_rate": v}}
            for v in (0.9, 0.9, 0.9, 0.9, 0.4)  # latest collapses
        ]
        report = compare_history(
            entries, metric="counters.cellcache.hit_rate",
            threshold=0.1, direction="higher",
        )
        (row,) = report.rows
        assert row.status == "regression"


class TestMetricGateSpec:
    def test_parse_forms(self):
        gate = parse_gate_spec("virtual_seconds")
        assert gate == MetricGate("virtual_seconds", 0.05, "lower")
        assert parse_gate_spec("seconds:2.0").threshold == 2.0
        gate = parse_gate_spec("counters.cellcache.hit_rate:0.1:higher")
        assert gate.metric == "counters.cellcache.hit_rate"
        assert gate.direction == "higher"
        # Empty threshold field keeps the default.
        assert parse_gate_spec("seconds::higher").threshold == 0.05

    def test_parse_rejects_malformed_specs(self):
        with pytest.raises(ValueError):
            parse_gate_spec(":0.1")
        with pytest.raises(ValueError):
            parse_gate_spec("a:b:c:d")
        with pytest.raises(ValueError):
            parse_gate_spec("seconds:0.1:sideways")

    def test_metric_gate_validates(self):
        with pytest.raises(ValueError):
            MetricGate("seconds", threshold=0.0)
        with pytest.raises(ValueError):
            MetricGate("seconds", direction="up")

    def test_default_fleet_gates_cover_issue_metrics(self):
        metrics = {g.metric for g in DEFAULT_FLEET_GATES}
        assert {"seconds", "virtual_seconds",
                "counters.recovery_overhead_s",
                "counters.cellcache.hit_rate"} <= metrics
        by_metric = {g.metric: g for g in DEFAULT_FLEET_GATES}
        assert by_metric["counters.cellcache.hit_rate"].direction == "higher"


class TestMultiMetricGate:
    @staticmethod
    def _history():
        entries = []
        for _ in range(4):
            entries.append({"name": "t", "seconds": 1.0, "virtual_seconds": 10.0,
                            "counters": {"cellcache.hit_rate": 0.9}})
            entries.append({"name": "cheap", "seconds": 0.2})
        return entries

    def test_clean_history_passes_every_gate(self):
        multi = compare_history_multi(self._history() + [
            {"name": "t", "seconds": 1.0, "virtual_seconds": 10.0,
             "counters": {"cellcache.hit_rate": 0.9}},
        ])
        assert multi.ok
        assert "FLEET GATE OK" in format_multi_report(multi)

    def test_one_regressed_metric_fails_the_whole_gate(self):
        multi = compare_history_multi(self._history() + [
            {"name": "t", "seconds": 1.0, "virtual_seconds": 14.0,  # +40%
             "counters": {"cellcache.hit_rate": 0.9}},
        ])
        assert not multi.ok
        assert [(m, r.name) for m, r in multi.regressions] == \
            [("virtual_seconds", "t")]
        assert "FLEET GATE REGRESSION in 1 bench-metric pair(s)" in \
            format_multi_report(multi)

    def test_hit_rate_gates_downward_drift(self):
        multi = compare_history_multi(self._history() + [
            {"name": "t", "seconds": 1.0, "virtual_seconds": 10.0,
             "counters": {"cellcache.hit_rate": 0.5}},  # cache collapsed
        ])
        assert [(m, r.name) for m, r in multi.regressions] == \
            [("counters.cellcache.hit_rate", "t")]

    def test_missing_metric_skips_without_masking(self):
        """A bench with no recovery/cache counters is skipped for those
        metrics only; its timing gates still run."""
        multi = compare_history_multi(self._history() + [
            {"name": "cheap", "seconds": 0.2},
        ])
        assert multi.ok
        status = multi.gate_status("cheap")
        assert status["seconds"] == "ok"
        assert "counters.recovery_overhead_s" not in status  # never seen

    def test_gate_status_per_bench(self):
        multi = compare_history_multi(self._history() + [
            {"name": "t", "seconds": 1.0, "virtual_seconds": 14.0,
             "counters": {"cellcache.hit_rate": 0.9}},
        ])
        status = multi.gate_status("t")
        assert status["virtual_seconds"] == "regression"
        assert status["seconds"] == "ok"
        assert multi.gate_status("nonexistent") == {}

    def test_to_dict_is_json_ready(self):
        multi = compare_history_multi(self._history())
        doc = json.dumps(multi.to_dict())
        assert '"ok": true' in doc
