"""Tests for repro.network.switch and topology: the Section 3.1 fabric."""

import pytest

from repro.network import (
    FASTIRON_800,
    FASTIRON_1500,
    SPACE_SIMULATOR_FABRIC,
    FabricModel,
    Flow,
    PortLocation,
    bisection_flows,
    cross_module_flows,
    effective_pairwise_mbits,
    hypercube_pairs,
    pair_flows,
)


class TestSwitchSpecs:
    def test_fabric_has_at_least_294_ports(self):
        # Paper: "304 Gigabit ports" across the 1500 + 800.
        assert SPACE_SIMULATOR_FABRIC.total_ports == 304
        assert SPACE_SIMULATOR_FABRIC.total_ports >= 294

    def test_module_port_counts(self):
        assert FASTIRON_1500.ports == 224  # the 224 cables in Fig 1
        assert FASTIRON_800.ports == 80


class TestLocate:
    def test_first_switch_first_module(self):
        loc = SPACE_SIMULATOR_FABRIC.locate(0)
        assert loc == PortLocation(0, 0, 0)

    def test_module_boundaries(self):
        assert SPACE_SIMULATOR_FABRIC.locate(15).module == 0
        assert SPACE_SIMULATOR_FABRIC.locate(16).module == 1

    def test_switch_boundary(self):
        assert SPACE_SIMULATOR_FABRIC.locate(223).switch == 0
        assert SPACE_SIMULATOR_FABRIC.locate(224).switch == 1
        assert SPACE_SIMULATOR_FABRIC.locate(224).module == 0

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            SPACE_SIMULATOR_FABRIC.locate(304)
        with pytest.raises(ValueError):
            SPACE_SIMULATOR_FABRIC.locate(-1)


class TestFlowRates:
    def test_single_flow_gets_line_rate(self):
        fabric = SPACE_SIMULATOR_FABRIC
        flows = [Flow(fabric.locate(0), fabric.locate(1))]
        assert fabric.flow_rates(flows) == [pytest.approx(1000.0)]

    def test_intra_module_pairs_nonblocking(self):
        # "Within a 16-port switch module, the messages are non-blocking."
        fabric = SPACE_SIMULATOR_FABRIC
        flows = [Flow(fabric.locate(2 * i), fabric.locate(2 * i + 1)) for i in range(8)]
        for rate in fabric.flow_rates(flows):
            assert rate == pytest.approx(1000.0)

    def test_cross_module_16_streams_saturate_at_6000(self):
        # "with 16 processors on one module sending to 16 on another
        # module, the total throughput was about 6000 Mbits."
        fabric = SPACE_SIMULATOR_FABRIC
        flows = cross_module_flows(fabric, 0, 1, n_streams=16)
        assert fabric.aggregate_mbits(flows) == pytest.approx(6000.0, rel=0.01)

    def test_few_cross_module_streams_uncontended(self):
        fabric = SPACE_SIMULATOR_FABRIC
        flows = cross_module_flows(fabric, 0, 1, n_streams=4)
        for rate in fabric.flow_rates(flows):
            assert rate == pytest.approx(1000.0)

    def test_trunk_limits_cross_switch_traffic(self):
        # 32 streams from switch 0 to switch 1 share the 8 Gbit trunk.
        fabric = SPACE_SIMULATOR_FABRIC
        flows = [Flow(fabric.locate(i), fabric.locate(224 + i)) for i in range(32)]
        total = fabric.aggregate_mbits(flows)
        assert total <= 8000.0 + 1e-6
        assert total == pytest.approx(8000.0, rel=0.05)

    def test_empty_flow_list(self):
        assert SPACE_SIMULATOR_FABRIC.flow_rates([]) == []

    def test_max_min_fairness_mixed_traffic(self):
        # One intra-module flow and sixteen cross-module flows: the
        # intra-module flow must keep full line rate.
        fabric = SPACE_SIMULATOR_FABRIC
        cross = cross_module_flows(fabric, 1, 2, n_streams=16)
        local = Flow(PortLocation(0, 0, 0), PortLocation(0, 0, 1))
        rates = fabric.flow_rates([local] + cross)
        assert rates[0] == pytest.approx(1000.0)
        assert sum(rates[1:]) == pytest.approx(6000.0, rel=0.01)

    def test_invalid_flow_rejected(self):
        fabric = SPACE_SIMULATOR_FABRIC
        bad = Flow(PortLocation(0, 99, 0), PortLocation(0, 0, 1))
        with pytest.raises(ValueError):
            fabric.flow_rates([bad])

    def test_backplane_efficiency_validation(self):
        with pytest.raises(ValueError):
            FabricModel(backplane_efficiency=0.0)
        with pytest.raises(ValueError):
            FabricModel(switches=())


class TestTopology:
    def test_hypercube_pairs_dimension_zero(self):
        assert hypercube_pairs(4, 0) == [(0, 1), (2, 3)]

    def test_hypercube_pairs_dimension_one(self):
        assert hypercube_pairs(4, 1) == [(0, 2), (1, 3)]

    def test_hypercube_pairs_skip_out_of_range(self):
        # 6 ranks, dimension 2: 2^2=4 partner of 0 is 4 (ok), of 1 is 5
        # (ok), of 2 is 6 (out), of 3 is 7 (out).
        assert hypercube_pairs(6, 2) == [(0, 4), (1, 5)]

    def test_pair_flows_bidirectional(self):
        flows = pair_flows(SPACE_SIMULATOR_FABRIC, [(0, 1)])
        assert len(flows) == 2

    def test_bisection_validation(self):
        with pytest.raises(ValueError):
            bisection_flows(SPACE_SIMULATOR_FABRIC, 3)

    def test_bisection_within_switch_vs_across_trunk(self):
        fabric = SPACE_SIMULATOR_FABRIC
        # 32 ranks: module 0 mirrors onto module 1 — one backplane hop,
        # so the aggregate is the 6000 Mbit/s cross-module ceiling.
        small = fabric.aggregate_mbits(bisection_flows(fabric, 32))
        # 294 ranks: 70 of the 147 mirror flows cross the 8 Gbit trunk.
        large = fabric.aggregate_mbits(bisection_flows(fabric, 294))
        assert small == pytest.approx(6000.0, rel=0.01)
        # Per-rank bisection bandwidth collapses at full scale.
        assert large / 147 < small / 16

    def test_effective_pairwise_degrades_past_256(self):
        # "This limits the scaling of codes running on more than about
        # 256 processors": hypercube exchanges at 294 ranks cross the
        # trunk and see far less than line rate.
        fabric = SPACE_SIMULATOR_FABRIC
        small = effective_pairwise_mbits(fabric, 16)
        full = effective_pairwise_mbits(fabric, 294)
        assert small == pytest.approx(1000.0, rel=0.01)
        assert full < 300.0
