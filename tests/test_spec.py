"""Tests for repro.spec: SPEC CPU2000 model."""

import pytest

from repro.machine import NORMAL, OVERCLOCK, SLOW_CPU, SLOW_MEM
from repro.spec import (
    SPECFP2000_SS,
    SPECINT2000_SS,
    breakeven_price_vs,
    price_per_specfp,
    spec_scores,
)


class TestScores:
    def test_normal_scores_match_paper(self):
        scores = spec_scores(NORMAL)
        assert scores["CINT2000"] == pytest.approx(SPECINT2000_SS)
        assert scores["CFP2000"] == pytest.approx(SPECFP2000_SS)

    def test_table2_columns_reproduced(self):
        # slow mem: 655 / 527; slow CPU: 640 / 646 (within fit slack).
        slow_mem = spec_scores(SLOW_MEM)
        assert slow_mem["CINT2000"] == pytest.approx(655.0, rel=0.03)
        assert slow_mem["CFP2000"] == pytest.approx(527.0, rel=0.03)
        slow_cpu = spec_scores(SLOW_CPU)
        assert slow_cpu["CINT2000"] == pytest.approx(640.0, rel=0.03)
        assert slow_cpu["CFP2000"] == pytest.approx(646.0, rel=0.03)

    def test_overclock_prediction(self):
        # Paper: 830 / 782.
        over = spec_scores(OVERCLOCK)
        assert over["CINT2000"] == pytest.approx(830.0, rel=0.03)
        assert over["CFP2000"] == pytest.approx(782.0, rel=0.03)

    def test_fp_more_memory_bound_than_int(self):
        from repro.spec import spec_profiles

        p = spec_profiles()
        assert p["CFP2000"].memory_boundedness > p["CINT2000"].memory_boundedness


class TestPricePerformance:
    def test_dollars_per_specfp(self):
        # Section 3.5: $888 node / 742 SPECfp = $1.20.
        assert price_per_specfp() == pytest.approx(1.20, abs=0.01)

    def test_hp_breakeven_near_2500(self):
        assert breakeven_price_vs() == pytest.approx(2536.0, rel=0.02)

    def test_july_2003_price_drop(self):
        # "the per node cost has decreased over $200, so SPECfp
        # price/performance ... would be better than $1.00".
        assert price_per_specfp(node_cost=888.0 - 200.0) < 1.00

    def test_validation(self):
        with pytest.raises(ValueError):
            price_per_specfp(node_cost=0.0)
        with pytest.raises(ValueError):
            breakeven_price_vs(competitor_specfp=-1.0)
