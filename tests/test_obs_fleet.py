"""Tests for repro.obs.fleet: the bench-suite registry and fleet runner.

The real suite's contract is pinned (every ``benchmarks/bench_*.py``
registers with tags and a smoke declaration); everything behavioral
runs against a tiny fixture suite in ``tmp_path`` — synthetic bench
modules next to a copy of the real ``_harness.py``/``schema.json`` —
so the tests exercise registry refusal, worker side-channel
suppression, dedupe/cache/failed ledger statuses, and the SIGKILL
crash drill without paying for real workloads.
"""

import json
import os
import re
import shutil
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign.fingerprint import scenario_fingerprint_hex
from repro.campaign.runner import CHECKPOINT_SUBDIR, _load_ledger
from repro.campaign.spec import SPEC_KINDS, BenchSpec, spec_from_dict
from repro.obs.fleet import (
    BENCH_ROOT_ENV,
    SMOKE_KINDS,
    FleetError,
    build_registry,
    default_bench_dir,
    fleet_id,
    load_fleet,
    run_bench_scenario,
    run_fleet,
)
from repro.obs.history import load_history
from repro.obs.schemacheck import validate_jsonl_lines
from repro.resilience.checkpoint import CheckpointStore

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
REPO_SRC = os.path.join(REPO_ROOT, "src")
REAL_BENCH_DIR = os.path.join(REPO_ROOT, "benchmarks")

_BENCH_TEMPLATE = '''\
FLEET = {{"tags": ("fixture",), "smoke": "{smoke_kind}"}}


def main(smoke: bool = False) -> dict:
    from _harness import run_main
    print("{name} stdout chatter")
{fail_line}
    return run_main(
        {record_name},
        lambda: {{"x": {value}}},
        params={{"smoke": smoke}},
        counters=lambda out: {{
            "x": out["x"],
            "cellcache.hit_rate": 0.9,
            "wait.late-sender_s": 1.5,
            "wait.transfer_s": 0.5,
        }},
        virtual_seconds={value},
        quiet=True,
    )
'''


def _write_bench(bench_dir, name, *, smoke_kind="full", fail=False, value=2.0):
    record_name = (
        f'"{name}_smoke" if smoke else "{name}"' if smoke_kind == "reduced"
        else f'"{name}"'
    )
    fail_line = (
        '    raise RuntimeError("fixture bench exploded")' if fail else "    pass"
    )
    source = _BENCH_TEMPLATE.format(
        name=name, smoke_kind=smoke_kind, record_name=record_name,
        fail_line=fail_line, value=value,
    )
    with open(os.path.join(bench_dir, f"bench_{name}.py"), "w") as fh:
        fh.write(source)


@pytest.fixture
def suite(tmp_path, monkeypatch):
    """A fixture bench dir with the real harness/schema copied in."""
    monkeypatch.delenv(BENCH_ROOT_ENV, raising=False)
    monkeypatch.delenv("REPRO_BENCH_HISTORY", raising=False)
    monkeypatch.delenv("REPRO_BENCH_DIR", raising=False)
    bench_dir = str(tmp_path / "suite")
    os.makedirs(bench_dir)
    shutil.copy(os.path.join(REAL_BENCH_DIR, "_harness.py"), bench_dir)
    shutil.copy(os.path.join(REAL_BENCH_DIR, "schema.json"), bench_dir)
    yield bench_dir
    # Stems repeat across tests (alpha, beta, ...): purge the private
    # module cache and path entry so each fixture dir loads fresh.
    for name in [n for n in sys.modules if n.startswith("_fleet_bench_")]:
        del sys.modules[name]
    if bench_dir in sys.path:
        sys.path.remove(bench_dir)


def _validate_ledger(path):
    schema_path = os.path.join(REAL_BENCH_DIR, "schema.json")
    with open(schema_path) as fh:
        schema = json.load(fh)
    with open(path) as fh:
        return validate_jsonl_lines(fh, schema)


class TestRealSuiteRegistry:
    """The committed suite must satisfy the fleet smoke contract."""

    def test_registry_covers_every_bench_file(self, monkeypatch):
        monkeypatch.delenv(BENCH_ROOT_ENV, raising=False)
        registry = build_registry()
        files = {
            f[len("bench_"):-len(".py")]
            for f in os.listdir(REAL_BENCH_DIR)
            if f.startswith("bench_") and f.endswith(".py")
        }
        assert set(registry) == files
        assert len(registry) >= 26
        for entry in registry.values():
            assert entry.smoke in SMOKE_KINDS
            assert entry.tags, f"{entry.name} has no tags"
            assert os.path.isfile(entry.path)

    def test_reduced_benches_emit_distinct_smoke_records(self, monkeypatch):
        monkeypatch.delenv(BENCH_ROOT_ENV, raising=False)
        registry = build_registry()
        reduced = {n for n, e in registry.items() if e.smoke == "reduced"}
        # The known heavyweights must stay reduced (full mode takes
        # minutes); their smoke records are renamed to protect the
        # full-mode rolling baselines.
        assert {"fig7_cosmology", "fig8_supernova", "scale_ranks"} <= reduced
        for name in reduced:
            assert registry[name].smoke_record_name == f"{name}_smoke"
        for name in set(registry) - reduced:
            assert registry[name].smoke_record_name == name

    def test_env_var_overrides_default_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv(BENCH_ROOT_ENV, str(tmp_path))
        assert default_bench_dir() == str(tmp_path)
        monkeypatch.delenv(BENCH_ROOT_ENV)
        assert default_bench_dir() == REAL_BENCH_DIR


class TestRegistryRefusal:
    def test_one_error_names_every_offender(self, suite):
        _write_bench(suite, "good")
        offenders = {
            "bench_nofleet.py": "def main(smoke=False):\n    return {}\n",
            "bench_nosmoke.py": (
                'FLEET = {"tags": ("x",), "smoke": "full"}\n'
                "def main():\n    return {}\n"
            ),
            "bench_nomain.py": 'FLEET = {"tags": ("x",), "smoke": "full"}\n',
            "bench_badkind.py": (
                'FLEET = {"tags": ("x",), "smoke": "quick"}\n'
                "def main(smoke=False):\n    return {}\n"
            ),
            "bench_brokenimport.py": 'raise ImportError("nope")\n',
        }
        for filename, source in offenders.items():
            with open(os.path.join(suite, filename), "w") as fh:
                fh.write(source)
        with pytest.raises(FleetError) as exc:
            build_registry(suite)
        msg = str(exc.value)
        assert f"{len(offenders)} bench(es)" in msg
        for filename in offenders:
            assert filename in msg
        assert "bench_good.py" not in msg

    def test_empty_and_missing_dirs_fail(self, tmp_path):
        with pytest.raises(FleetError, match="no bench_"):
            build_registry(str(tmp_path))
        with pytest.raises(FleetError, match="not found"):
            build_registry(str(tmp_path / "nope"))


class TestBenchSpec:
    def test_registered_and_roundtrips(self):
        assert SPEC_KINDS["bench"] is BenchSpec
        spec = BenchSpec(bench="fig7_cosmology", smoke=True)
        d = spec.to_dict()
        assert d["kind"] == "bench"
        assert spec_from_dict(d) == spec
        assert spec_from_dict(d) is not spec

    def test_fingerprint_distinguishes_bench_and_mode(self):
        a = scenario_fingerprint_hex(BenchSpec(bench="alpha", smoke=True))
        assert a == scenario_fingerprint_hex(BenchSpec(bench="alpha", smoke=True))
        assert a != scenario_fingerprint_hex(BenchSpec(bench="beta", smoke=True))
        assert a != scenario_fingerprint_hex(BenchSpec(bench="alpha", smoke=False))

    def test_rejects_non_stem_names(self):
        for bad in ("", "Fig7", "a b", "../etc", "bench.py"):
            with pytest.raises(ValueError):
                BenchSpec(bench=bad)


class TestFleetId:
    def test_deterministic_and_mode_sensitive(self):
        catalog = [BenchSpec(bench="alpha"), BenchSpec(bench="beta")]
        fid = fleet_id(catalog, True)
        assert re.fullmatch(r"[0-9a-f]{32}", fid)
        assert fid == fleet_id(list(catalog), True)
        assert fid != fleet_id(catalog, False)
        assert fid != fleet_id(catalog[:1], True)
        assert fid != fleet_id(catalog[::-1], True)

    def test_accepts_spec_dicts(self):
        catalog = [BenchSpec(bench="alpha")]
        assert fleet_id([catalog[0].to_dict()], True) == fleet_id(catalog, True)


class TestRunBenchScenario:
    def test_suppresses_side_channels_and_stdout(
        self, suite, tmp_path, monkeypatch, capsys
    ):
        _write_bench(suite, "alpha")
        monkeypatch.setenv(BENCH_ROOT_ENV, suite)
        hist = tmp_path / "h.jsonl"
        emit_dir = tmp_path / "emit"
        monkeypatch.setenv("REPRO_BENCH_HISTORY", str(hist))
        monkeypatch.setenv("REPRO_BENCH_DIR", str(emit_dir))
        record = run_bench_scenario({"bench": "alpha", "smoke": True})
        assert record["name"] == "alpha"
        assert record["params"] == {"smoke": True}
        # The worker must not write records (single-writer rule) ...
        assert not hist.exists()
        assert not emit_dir.exists()
        # ... and must not leak bench chatter to the coordinator's stdout.
        assert "stdout chatter" not in capsys.readouterr().out
        # The environment is restored for the rest of the process.
        assert os.environ["REPRO_BENCH_HISTORY"] == str(hist)
        assert os.environ["REPRO_BENCH_DIR"] == str(emit_dir)

    def test_non_dict_record_is_an_error(self, suite, monkeypatch):
        with open(os.path.join(suite, "bench_badret.py"), "w") as fh:
            fh.write(
                'FLEET = {"tags": ("x",), "smoke": "full"}\n'
                "def main(smoke=False):\n    return 42\n"
            )
        monkeypatch.setenv(BENCH_ROOT_ENV, suite)
        with pytest.raises(TypeError, match="badret"):
            run_bench_scenario({"bench": "badret", "smoke": True})


class TestRunFleet:
    def test_fixture_fleet_end_to_end(self, suite, tmp_path):
        _write_bench(suite, "alpha")
        _write_bench(suite, "beta", smoke_kind="reduced", value=3.0)
        hist = tmp_path / "hist.jsonl"
        run = run_fleet(
            out_dir=str(tmp_path / "out"), bench_dir=suite, history=str(hist),
        )
        assert run.mode == "smoke"
        assert run.ok and len(run.rows) == 2
        assert run.status_counts == {"computed": 2}
        # Reduced benches emit under their _smoke record name.
        assert [r["name"] for r in run.rows] == ["alpha", "beta_smoke"]
        for row in run.rows:
            stamp = row["fleet"]
            assert stamp["id"] == run.fleet_id
            assert re.fullmatch(r"[0-9a-f]{32}", stamp["id"])
            assert stamp["mode"] == "smoke"
            assert stamp["tags"] == ["fixture"]
            assert stamp["shard_seconds"] >= 0.0
        # The ledger round-trips and is strictly schema-valid.
        assert load_fleet(run.ledger_path) == run.rows
        assert _validate_ledger(run.ledger_path) == []
        # The coordinator appended both computed records to history.
        entries = load_history(str(hist))
        assert [e["name"] for e in entries] == ["alpha", "beta_smoke"]
        assert all("ts" in e for e in entries)
        # The bench-root env override did not leak out of run_fleet.
        assert BENCH_ROOT_ENV not in os.environ

    def test_rerun_is_all_cache_hits(self, suite, tmp_path):
        _write_bench(suite, "alpha")
        _write_bench(suite, "beta")
        hist = tmp_path / "hist.jsonl"
        out = str(tmp_path / "out")
        run_fleet(out_dir=out, bench_dir=suite, history=str(hist))
        again = run_fleet(out_dir=out, bench_dir=suite, history=str(hist))
        assert again.status_counts == {"cached": 2}
        assert again.ok
        assert again.campaign.cache_hits == 2
        assert again.campaign.computed == 0
        # Cache hits are old news: history must not grow.
        assert len(load_history(str(hist))) == 2

    def test_duplicate_selection_dedupes(self, suite, tmp_path):
        _write_bench(suite, "alpha")
        run = run_fleet(
            ["alpha", "alpha"], out_dir=str(tmp_path / "out"), bench_dir=suite,
        )
        assert len(run.rows) == 2
        assert run.status_counts == {"computed": 1, "dedupe": 1}
        # Both rows carry the full record — dedupe is invisible in the data.
        assert run.rows[0]["counters"] == run.rows[1]["counters"]

    def test_failed_bench_becomes_schema_valid_row(self, suite, tmp_path):
        _write_bench(suite, "alpha")
        _write_bench(suite, "broken", fail=True)
        hist = tmp_path / "hist.jsonl"
        run = run_fleet(
            out_dir=str(tmp_path / "out"), bench_dir=suite, history=str(hist),
        )
        assert not run.ok
        assert run.status_counts == {"computed": 1, "failed": 1}
        (row,) = run.failed
        assert row["fleet"]["bench"] == "broken"
        assert "exploded" in row["fleet"]["error"]
        assert row["notes"].startswith("FAILED:")
        # Failed rows are still strictly schema-valid ledger lines ...
        assert _validate_ledger(run.ledger_path) == []
        assert len(load_fleet(run.ledger_path)) == 2
        # ... but never join the longitudinal baseline.
        assert [e["name"] for e in load_history(str(hist))] == ["alpha"]

    def test_unknown_bench_fails_fast(self, suite, tmp_path):
        _write_bench(suite, "alpha")
        with pytest.raises(FleetError, match="unknown bench"):
            run_fleet(["nope"], out_dir=str(tmp_path / "out"), bench_dir=suite)


class TestLoadFleet:
    def test_forgiving_reader(self, suite, tmp_path):
        good = {"name": "a", "seconds": 1.0, "fleet": {"bench": "a"}}
        path = tmp_path / "fleet.jsonl"
        path.write_text(
            "\n"                                   # blank
            "{not json\n"                          # corrupt
            '{"name": "x", "seconds": 1.0}\n'      # no fleet stamp
            + json.dumps(good) + "\n"
        )
        assert load_fleet(str(path)) == [good]


@pytest.mark.slow
class TestFleetSigkillResume:
    """ISSUE 8 acceptance: a fleet killed mid-run resumes from its
    committed shards — zero recompute, complete ledger."""

    N_BENCHES = 12

    def test_killed_fleet_resumes_without_recompute(self, suite, tmp_path):
        names = [f"s{i:02d}" for i in range(self.N_BENCHES)]
        for i, name in enumerate(names):
            _write_bench(suite, name, value=1.0 + i)
        out = tmp_path / "out"
        ckpt = CheckpointStore(str(out / "campaign" / CHECKPOINT_SUBDIR))

        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        env.pop("REPRO_BENCH_HISTORY", None)
        env.pop("REPRO_BENCH_DIR", None)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.obs", "fleet",
             "--out", str(out), "--bench-dir", suite,
             "--workers", "2", "--throttle", "0.3"],
            env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.time() + 120.0
            while _committed(ckpt) < 3:
                assert proc.poll() is None, "fleet finished before the kill"
                assert time.time() < deadline, "no committed shards within 120 s"
                time.sleep(0.02)
            os.kill(proc.pid, signal.SIGKILL)
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL

        survivors = set(_load_ledger(ckpt))
        assert 3 <= len(survivors) < self.N_BENCHES, "kill landed mid-fleet"

        run = run_fleet(out_dir=str(out), bench_dir=suite, workers=1)
        report = run.campaign
        assert set(report.computed_fingerprints) & survivors == set()
        assert report.resume_hits == len(survivors)
        assert report.computed == self.N_BENCHES - len(survivors)
        assert report.failed == 0

        assert run.ok and len(run.rows) == self.N_BENCHES
        statuses = {r["fleet"]["bench"]: r["fleet"]["status"] for r in run.rows}
        assert set(statuses) == set(names)
        assert set(statuses.values()) <= {"computed", "resumed"}
        assert _validate_ledger(run.ledger_path) == []


def _committed(ckpt: CheckpointStore) -> int:
    """Committed shard count, 0 while no epoch exists (poll-safe)."""
    try:
        epoch = ckpt.latest_committed()
        if epoch is None:
            return 0
        return int(ckpt.commit_meta(epoch)["completed"])
    except (OSError, json.JSONDecodeError, KeyError):
        return 0
