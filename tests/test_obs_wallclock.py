"""Wall-clock attribution unit + golden-trace regression tests.

The profiler is event-sourced, so a saved trace is a complete
regression fixture: replaying ``tests/golden/wallclock_events.json``
(recorded from ``python -m repro.obs wallclock --n 1200 --ranks 4
--steps 2 --seed 11``) must reproduce the pinned bucket totals to the
bit, and on every trace — golden or synthetic — the bucket totals must
partition ``[t0, t_final]`` exactly.
"""

import io
import json
from pathlib import Path

import pytest

from repro.obs import wallclock as wc

GOLDEN = Path(__file__).parent / "golden" / "wallclock_events.json"

#: Bit-exact bucket totals for the golden trace (float.hex form — any
#: change to the attribution arithmetic shows up as a one-ulp diff).
GOLDEN_BUCKETS = {
    "engine": float.fromhex("0x1.96f7deb860000p-4"),
    "kernel": float.fromhex("0x1.2be4690f60000p-4"),
    "serialization": float.fromhex("0x1.290456e180000p-6"),
    "comm": float.fromhex("0x1.0d5d582000000p-9"),
    "other": float.fromhex("0x1.1ddcdfb000000p-11"),
}
GOLDEN_ELAPSED = float.fromhex("0x1.8be2010040000p-3")


def _fake_clock(times):
    it = iter(times)
    return lambda: next(it)


class TestProfilerUnit:
    def test_innermost_bucket_charging(self):
        prof = wc.WallProfiler(clock=_fake_clock([0.0]))
        prof.enter("engine", now=1.0)      # other: 0..1
        prof.enter("kernel", now=3.0)      # engine: 1..3
        prof.exit(now=6.0)                 # kernel: 3..6
        prof.exit(now=7.0)                 # engine: 6..7
        rep = prof.finalize(now=10.0)      # other: 7..10
        assert rep.buckets == {"other": 4.0, "engine": 3.0, "kernel": 3.0}
        assert rep.elapsed == 10.0

    def test_finalize_unwinds_open_buckets(self):
        prof = wc.WallProfiler(clock=_fake_clock([0.0]))
        prof.enter("engine", now=1.0)
        prof.enter("comm", now=2.0)
        rep = prof.finalize(now=5.0)
        assert rep.buckets["comm"] == 3.0   # 2..5, innermost at finalize
        assert rep.buckets["engine"] == 1.0  # 1..2, before comm entered
        assert prof.events[-1] == ("final", "", 5.0)

    def test_exit_without_enter_raises(self):
        prof = wc.WallProfiler(clock=_fake_clock([0.0, 1.0]))
        with pytest.raises(RuntimeError, match="without a matching enter"):
            prof.exit()

    def test_bucket_noop_when_inactive(self):
        assert wc.ACTIVE is None
        with wc.bucket("kernel"):
            pass  # must not raise or record anything

    def test_profile_installs_and_restores_active(self):
        assert wc.ACTIVE is None
        with wc.profile() as prof:
            assert wc.ACTIVE is prof
            with wc.bucket("kernel"):
                pass
        assert wc.ACTIVE is None
        rep = prof.report()
        assert "kernel" in rep.buckets


class TestExactPartition:
    def test_buckets_sum_exactly_to_elapsed_synthetic(self):
        times = [0.0, 0.125, 0.25, 1.0, 1.5, 2.25, 4.0, 4.125]
        prof = wc.WallProfiler(clock=_fake_clock([times[0]]))
        prof.enter("engine", now=times[1])
        prof.enter("kernel", now=times[2])
        prof.exit(now=times[3])
        prof.enter("comm", now=times[4])
        prof.exit(now=times[5])
        prof.exit(now=times[6])
        rep = prof.finalize(now=times[7])
        assert sum(rep.buckets.values()) == rep.elapsed == times[-1] - times[0]

    def test_replay_roundtrip_is_bit_exact(self):
        prof = wc.WallProfiler(clock=_fake_clock([0.5]))
        prof.enter("kernel", now=0.75)
        prof.exit(now=1.9375)
        prof.finalize(now=2.5)
        again = wc.replay(prof.events)
        assert again.report() == prof.report()
        assert again.events == prof.events  # replay of a replay is stable

    def test_save_load_roundtrip(self):
        prof = wc.WallProfiler(clock=_fake_clock([0.0, 1.0, 2.0, 3.0]))
        with prof.bucket("serialization"):
            pass
        prof.finalize()
        fh = io.StringIO()
        wc.save_events(prof, fh)
        fh.seek(0)
        assert wc.load_events(fh) == prof.events

    def test_replay_rejects_garbage(self):
        with pytest.raises(ValueError, match="empty event list"):
            wc.replay([])
        with pytest.raises(ValueError, match="unknown wallclock event op"):
            wc.replay([("init", "", 0.0), ("warp", "x", 1.0)])


class TestGoldenTrace:
    """Regression pin on a recorded end-to-end parallel run trace."""

    @pytest.fixture(scope="class")
    def report(self):
        with GOLDEN.open() as fh:
            events = wc.load_events(fh)
        return wc.replay(events).report()

    def test_fixture_schema(self):
        doc = json.loads(GOLDEN.read_text())
        assert doc["schema"] == 1
        assert doc["events"][0][0] == "init"
        assert doc["events"][-1][0] == "final"

    def test_bucket_attribution_pinned(self, report):
        assert set(report.buckets) == set(wc.BUCKETS)
        for name, expected in GOLDEN_BUCKETS.items():
            assert report.buckets[name] == expected, name
        assert report.elapsed == GOLDEN_ELAPSED

    def test_buckets_sum_exactly_to_elapsed(self, report):
        assert sum(report.buckets.values()) == report.elapsed

    def test_every_instrumented_bucket_charged(self, report):
        # The trace comes from a real multi-rank run: every hot-path
        # bucket must have seen wall-clock, with the engine loop and
        # kernels carrying the bulk of it.
        for name in wc.BUCKETS:
            assert report.buckets[name] > 0.0, name
        assert report.fraction("engine") + report.fraction("kernel") > 0.5

    def test_replay_is_idempotent(self):
        with GOLDEN.open() as fh:
            events = wc.load_events(fh)
        once = wc.replay(events)
        twice = wc.replay(once.events)
        assert twice.report() == once.report()
        assert twice.events == once.events
