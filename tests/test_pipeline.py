"""The end-to-end pipeline: distributions, stage chaining, typed
products, per-stage checkpoint resume, and instrumentation.

The fast specs here use the smallest legal box (``n_side=4``) — too
coherent to form halos, which is itself a valid product (an all-zero
mass function), so the whole suite stays in the default tier's budget.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.campaign import PipelineSpec, SPEC_KINDS, scenario_fingerprint_hex, spec_from_dict, sweep
from repro.obs import Recorder
from repro.pipeline import (
    Distribution,
    Fixed,
    Grid,
    HMF_BIN_EDGES,
    Normal,
    PIPELINE_STAGES,
    PipelineProducts,
    STAGE_NAMES,
    Uniform,
    as_distribution,
    chain_seed,
    distribution_from_dict,
    draw_specs,
    ensemble_statistics,
    run_pipeline,
)

FAST = PipelineSpec(n_side=4, a_final=0.2, sn_particles=16, sn_steps=2,
                    with_neutrinos=False)


class TestDistributions:
    @pytest.mark.parametrize("dist", [
        Fixed(value=3), Uniform(low=0.1, high=0.5),
        Normal(mean=0.3, sigma=0.1, low=0.0, high=1.0), Grid(values=(1, 2, 3)),
    ])
    def test_json_round_trip(self, dist):
        encoded = json.loads(json.dumps(dist.to_dict()))
        assert distribution_from_dict(encoded) == dist

    def test_draws_respect_bounds(self):
        rng = np.random.default_rng(0)
        for _ in range(200):
            assert 0.1 <= Uniform(low=0.1, high=0.5).draw(rng, 0) < 0.5
            assert 0.0 <= Normal(mean=0.5, sigma=5.0, low=0.0, high=1.0).draw(rng, 0) <= 1.0

    def test_grid_cycles_by_index(self):
        g = Grid(values=(10, 20, 30))
        assert [g.draw(None, i) for i in range(5)] == [10, 20, 30, 10, 20]

    def test_as_distribution_coercions(self):
        assert as_distribution(0.3) == Fixed(value=0.3)
        assert as_distribution([1, 2]) == Grid(values=(1, 2))
        assert as_distribution(Fixed(value=1)) == Fixed(value=1)
        assert as_distribution({"kind": "uniform", "low": 0.0, "high": 1.0}) == \
            Uniform(low=0.0, high=1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Uniform(low=1.0, high=0.0)
        with pytest.raises(ValueError):
            Grid(values=())
        with pytest.raises(ValueError):
            distribution_from_dict({"kind": "lognormal"})

    def test_base_distribution_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Distribution().draw(None, 0)


class TestDrawSpecs:
    DISTS = {"omega0": Uniform(low=0.1, high=0.5),
             "sigma8": Grid(values=(0.8, 0.9, 1.0))}

    def test_index_seeded_determinism_across_sizes(self):
        small = draw_specs(FAST, self.DISTS, 4, seed=9)
        large = draw_specs(FAST, self.DISTS, 9, seed=9)
        assert small == large[:4]

    def test_seed_changes_draws(self):
        a = draw_specs(FAST, self.DISTS, 4, seed=1)
        b = draw_specs(FAST, self.DISTS, 4, seed=2)
        assert [s.omega0 for s in a] != [s.omega0 for s in b]

    def test_type_coercion_to_field_types(self):
        specs = draw_specs(FAST, {
            "sn_steps": Uniform(low=1.2, high=3.8),       # int field
            "with_neutrinos": Grid(values=(0, 1)),        # bool field
            "omega0": Grid(values=(1,)),                  # float field
        }, 4, seed=0)
        for i, s in enumerate(specs):
            assert isinstance(s.sn_steps, int) and 1 <= s.sn_steps <= 4
            assert isinstance(s.with_neutrinos, bool)
            assert isinstance(s.omega0, float)
            assert s.with_neutrinos is bool(i % 2)

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown spec fields"):
            draw_specs(FAST, {"warp_factor": Fixed(value=9)}, 2)

    def test_drawn_specs_are_validated(self):
        # a draw violating the spec's own __post_init__ must raise
        with pytest.raises(ValueError):
            draw_specs(FAST, {"n_side": Fixed(value=2)}, 1)

    def test_shorthand_accepted(self):
        specs = draw_specs(FAST, {"seed": [1, 2], "omega0": 0.4}, 3, seed=0)
        assert [s.seed for s in specs] == [1, 2, 1]
        assert all(s.omega0 == 0.4 for s in specs)


class TestPipelineSpec:
    def test_registered_with_campaign_engine(self):
        assert SPEC_KINDS["pipeline"] is PipelineSpec
        d = json.loads(json.dumps(PipelineSpec().to_dict()))
        assert spec_from_dict(d) == PipelineSpec()

    def test_sweep_builds_pipeline_catalogs(self):
        catalog = list(sweep(FAST, seed=[1, 2, 3]))
        assert [s.seed for s in catalog] == [1, 2, 3]

    @pytest.mark.parametrize("bad", [
        {"n_side": 3}, {"a_final": 0.05}, {"dlna": 0.0}, {"k_cut_fraction": 0.0},
        {"linking_length": 0.0}, {"min_members": 0}, {"pk_bins": 1},
        {"sn_particles": 4}, {"sn_steps": 0}, {"pressure_deficit": 1.5},
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            dataclasses.replace(PipelineSpec(), **bad)

    def test_chain_seed_depends_on_halo_catalog(self):
        assert chain_seed(1, 0, 0) != chain_seed(1, 12, 5)
        assert 0 <= chain_seed(20031115, 24, 16) < 2**31


class TestRunPipeline:
    @pytest.fixture(scope="class")
    def products(self):
        return run_pipeline(FAST)

    def test_stage_declarations(self):
        assert STAGE_NAMES == ("ics", "structure", "halos", "power", "supernova")
        for stage in PIPELINE_STAGES:
            assert stage.outputs, stage.name
        # the supernova stage consumes the halo catalog: a real chain
        supernova = PIPELINE_STAGES[-1]
        assert "n_halos" in supernova.inputs

    def test_emits_all_three_product_families(self, products):
        assert products.mass_function.bin_edges == HMF_BIN_EDGES
        assert len(products.mass_function.counts) == len(HMF_BIN_EDGES) - 1
        assert len(products.power_spectrum.k) >= 2
        assert products.power_spectrum.total > 0
        assert len(products.light_curve.times) == FAST.sn_steps
        assert products.light_curve.max_density > 0
        assert products.a_final == pytest.approx(FAST.a_final)

    def test_products_round_trip_and_summary(self, products):
        encoded = json.loads(json.dumps(products.to_dict()))
        assert PipelineProducts.from_dict(encoded) == products
        summary = products.summary()
        assert json.loads(json.dumps(summary)) == summary
        assert summary["structure_steps"] > 0
        assert summary["n_halos"] >= 0

    def test_deterministic(self, products):
        again = run_pipeline(FAST)
        assert again.to_dict() == products.to_dict()

    def test_fingerprint_names_the_spec(self, products):
        assert products.fingerprint == scenario_fingerprint_hex(FAST.to_dict())

    def test_halo_forming_box_fills_the_mass_function(self):
        # the default parameterization exists to actually form halos
        products = run_pipeline(PipelineSpec(seed=1))
        assert products.mass_function.n_halos > 0
        assert sum(products.mass_function.counts) == products.mass_function.n_halos

    def test_spans_and_counters(self):
        obs = Recorder()
        run_pipeline(FAST, observer=obs)
        spans = {s.name for s in obs.spans}
        assert {f"pipeline.{name}" for name in STAGE_NAMES} <= spans
        assert obs.counters["pipeline.stages_run"].value == len(STAGE_NAMES)

    def test_unknown_stop_after_rejected(self):
        with pytest.raises(ValueError, match="unknown stage"):
            run_pipeline(FAST, stop_after="warp")


class TestCheckpointResume:
    def test_resume_after_every_stage(self, tmp_path):
        """Stopping after any stage, the rerun resumes exactly there
        and reproduces the uninterrupted products bit for bit."""
        reference = run_pipeline(FAST).to_dict()
        for i, stop in enumerate(STAGE_NAMES[:-1]):
            ckpt_dir = str(tmp_path / f"ck_{stop}")
            first = []
            out = run_pipeline(FAST, checkpoint_dir=ckpt_dir, stop_after=stop,
                               trace=first)
            assert out is None
            assert first == list(STAGE_NAMES[:i + 1])
            rest = []
            resumed = run_pipeline(FAST, checkpoint_dir=ckpt_dir, trace=rest)
            assert rest == list(STAGE_NAMES[i + 1:])
            assert resumed.to_dict() == reference

    def test_completed_run_resumes_to_noop_products(self, tmp_path):
        ckpt_dir = str(tmp_path / "ck")
        reference = run_pipeline(FAST, checkpoint_dir=ckpt_dir)
        rerun_trace = []
        again = run_pipeline(FAST, checkpoint_dir=ckpt_dir, trace=rerun_trace)
        assert rerun_trace == []  # nothing recomputed
        assert again.to_dict() == reference.to_dict()

    def test_foreign_checkpoints_are_ignored(self, tmp_path):
        """A different spec's checkpoints in the same directory must
        not be resumed — the fingerprint guards the restart point."""
        ckpt_dir = str(tmp_path / "ck")
        run_pipeline(FAST, checkpoint_dir=ckpt_dir, stop_after="halos")
        other = dataclasses.replace(FAST, seed=7)
        trace = []
        products = run_pipeline(other, checkpoint_dir=ckpt_dir, trace=trace)
        assert trace == list(STAGE_NAMES)  # clean start, no resume
        assert products.to_dict() == run_pipeline(other).to_dict()

    def test_resume_counter(self, tmp_path):
        ckpt_dir = str(tmp_path / "ck")
        run_pipeline(FAST, checkpoint_dir=ckpt_dir, stop_after="structure")
        obs = Recorder()
        run_pipeline(FAST, checkpoint_dir=ckpt_dir, observer=obs)
        assert obs.counters["pipeline.resumed_stages"].value == 2


class TestEnsembleStatistics:
    def test_moments_and_quantiles(self):
        stats = ensemble_statistics([{"x": float(v)} for v in range(1, 12)])
        x = stats["x"]
        assert x["n"] == 11 and x["mean"] == 6.0
        assert x["min"] == 1.0 and x["max"] == 11.0
        assert x["q10"] <= x["q50"] <= x["q90"]
        assert x["q50"] == 6.0

    def test_ragged_summaries(self):
        stats = ensemble_statistics([{"x": 1.0, "y": 2.0}, {"x": 3.0}])
        assert stats["x"]["n"] == 2 and stats["y"]["n"] == 1

    def test_empty(self):
        assert ensemble_statistics([]) == {}
