"""Tests for repro.network.stacks and netpipe: the Figure 2 models."""

import numpy as np
import pytest

from repro.network import (
    FIGURE2_STACKS,
    LAM,
    LAM_O,
    MPICH2_092,
    MPICH_125,
    TCP,
    MessagingStack,
    message_sizes,
    summarize,
    sweep,
)


class TestMessagingStack:
    def test_time_is_monotone_in_size(self):
        sizes = [0, 1, 100, 10_000, 1_000_000, 16_000_000]
        for stack in FIGURE2_STACKS:
            times = [stack.time_s(n) for n in sizes]
            assert all(b >= a for a, b in zip(times, times[1:])), stack.name

    def test_zero_byte_message_costs_latency(self):
        assert TCP.time_s(0) == pytest.approx(79e-6)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            TCP.time_s(-1)

    def test_asymptotic_bandwidth_of_tcp(self):
        # Fig 2: TCP achieves 779 Mbit/s.
        assert TCP.asymptotic_mbits_s == pytest.approx(779.0, rel=1e-6)
        assert TCP.bandwidth_mbits_s(16 * 1024 * 1024) == pytest.approx(779.0, rel=0.01)

    def test_copy_overhead_lowers_asymptote(self):
        base = MessagingStack("a", 80.0, 779.0, copies=0.0)
        copying = MessagingStack("b", 80.0, 779.0, copies=1.0)
        assert copying.asymptotic_mbits_s < base.asymptotic_mbits_s

    def test_validation(self):
        with pytest.raises(ValueError):
            MessagingStack("bad", -1.0, 779.0)
        with pytest.raises(ValueError):
            MessagingStack("bad", 80.0, 779.0, copies=-1.0)


class TestFigure2Features:
    """The qualitative features called out in the Figure 2 caption."""

    def test_latency_ordering(self):
        # 79 us TCP, 83 us LAM, 87 us mpich/mpich2.
        assert summarize(TCP).latency_us == pytest.approx(79.0, rel=0.01)
        assert summarize(LAM).latency_us == pytest.approx(83.0, rel=0.01)
        assert summarize(MPICH_125).latency_us == pytest.approx(87.0, rel=0.01)
        assert summarize(MPICH2_092).latency_us == pytest.approx(87.0, rel=0.01)

    def test_tcp_has_highest_peak(self):
        peaks = {s.name: summarize(s).peak_mbits_s for s in FIGURE2_STACKS}
        assert max(peaks, key=peaks.get) == "TCP"
        assert peaks["TCP"] == pytest.approx(779.0, rel=0.01)

    def test_mpich125_slowest_for_large_messages(self):
        big = 8 * 1024 * 1024
        rates = {s.name: s.bandwidth_mbits_s(big) for s in FIGURE2_STACKS}
        assert min(rates, key=rates.get) == "mpich 1.2.5"

    def test_mpich2_solved_the_large_message_problem(self):
        big = 8 * 1024 * 1024
        assert MPICH2_092.bandwidth_mbits_s(big) > 1.2 * MPICH_125.bandwidth_mbits_s(big)

    def test_lam_O_flag_improves_performance(self):
        big = 4 * 1024 * 1024
        assert LAM_O.bandwidth_mbits_s(big) > LAM.bandwidth_mbits_s(big)


class TestNetpipe:
    def test_message_sizes_ladder(self):
        sizes = message_sizes(max_bytes=1024, points_per_octave=1)
        assert sizes[0] == 1
        assert sizes[-1] == 1024
        assert list(sizes) == sorted(set(sizes))

    def test_message_sizes_validation(self):
        with pytest.raises(ValueError):
            message_sizes(max_bytes=0)
        with pytest.raises(ValueError):
            message_sizes(points_per_octave=0)

    def test_sweep_bandwidth_monotone_nondecreasing_without_rendezvous(self):
        points = sweep(TCP)
        rates = [p.mbits_s for p in points]
        assert all(b >= a - 1e-9 for a, b in zip(rates, rates[1:]))

    def test_sweep_custom_sizes(self):
        points = sweep(TCP, sizes=np.array([1, 1024]))
        assert [p.nbytes for p in points] == [1, 1024]

    def test_half_bandwidth_point(self):
        s = summarize(TCP)
        n_half = int(s.half_bandwidth_bytes)
        achieved = TCP.bandwidth_mbits_s(n_half)
        assert achieved == pytest.approx(TCP.asymptotic_mbits_s / 2, rel=0.01)
