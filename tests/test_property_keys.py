"""Property-based conformance tests for the key machinery.

The Morton/Hilbert key layer is the foundation every parallel feature
sits on (domain decomposition, the hashed tree, the ABM request
namespace), so its algebra is pinned here with hypothesis-generated
inputs rather than hand-picked examples: round trips, order
preservation, parent/child/ancestor identities, and the Hilbert curve's
defining adjacency invariant, across bit depths.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hilbert import axes_to_hilbert, hilbert_to_axes
from repro.core.keys import (
    KEY_BITS,
    MAX_LEVEL,
    ROOT_KEY,
    BoundingBox,
    ancestor_at_level,
    child_keys,
    key_level,
    keys_from_positions,
    octant_of,
    parent_key,
    positions_from_keys,
)

UNIT_BOX = BoundingBox(np.zeros(3), 1.0)

coord = st.integers(min_value=0, max_value=(1 << KEY_BITS) - 1)
triple = st.tuples(coord, coord, coord)
triples = st.lists(triple, min_size=1, max_size=64)
bit_depth = st.integers(min_value=1, max_value=KEY_BITS)


def _centers(coords: np.ndarray, bits: int = KEY_BITS) -> np.ndarray:
    """World positions at the centers of the given lattice cells."""
    return (coords.astype(np.float64) + 0.5) / (1 << bits)


def _morton_interleave(c: tuple[int, int, int], bits: int) -> int:
    """Reference bit-interleave (x LSB), independent of the fast path."""
    out = 0
    for b in range(bits):
        for axis in range(3):
            out |= ((c[axis] >> b) & 1) << (3 * b + axis)
    return out | (1 << (3 * bits))


class TestMortonRoundTrip:
    @given(triples)
    @settings(max_examples=60, deadline=None)
    def test_key_round_trip_recovers_lattice_cell(self, cs):
        coords = np.array(cs, dtype=np.int64)
        pos = _centers(coords)
        keys = keys_from_positions(pos, UNIT_BOX)
        back = positions_from_keys(keys, UNIT_BOX)
        cell = 1.0 / (1 << KEY_BITS)
        # positions_from_keys returns the cell corner: the center we
        # encoded is exactly half a cell away on every axis.
        assert np.allclose(pos - back, 0.5 * cell, atol=1e-12)

    @given(triples)
    @settings(max_examples=60, deadline=None)
    def test_keys_match_reference_interleave(self, cs):
        coords = np.array(cs, dtype=np.int64)
        keys = keys_from_positions(_centers(coords), UNIT_BOX)
        expected = [_morton_interleave(tuple(int(x) for x in c), KEY_BITS) for c in coords]
        assert [int(k) for k in keys] == expected

    @given(triple, triple)
    @settings(max_examples=60, deadline=None)
    def test_key_order_is_interleaved_lex_order(self, a, b):
        ka, kb = (
            int(keys_from_positions(_centers(np.array([c])), UNIT_BOX)[0]) for c in (a, b)
        )
        ia, ib = _morton_interleave(a, KEY_BITS), _morton_interleave(b, KEY_BITS)
        assert (ka < kb) == (ia < ib) and (ka == kb) == (a == b)


class TestKeyAlgebra:
    @given(triple, st.integers(min_value=0, max_value=MAX_LEVEL - 1))
    @settings(max_examples=80, deadline=None)
    def test_parent_child_inverse(self, c, level):
        full = _morton_interleave(c, KEY_BITS)
        key = full >> (3 * (MAX_LEVEL - level))  # a genuine level-`level` cell
        kids = child_keys(key)
        assert kids.shape == (8,)
        assert list(kids) == list(range(key << 3, (key << 3) + 8))
        for i, kid in enumerate(kids):
            assert parent_key(int(kid)) == key
            assert key_level(int(kid)) == level + 1
            assert octant_of(int(kid)) == i
            assert ancestor_at_level(int(kid), level) == key

    @given(triple, st.integers(min_value=0, max_value=MAX_LEVEL))
    @settings(max_examples=80, deadline=None)
    def test_ancestor_matches_coarse_quantization(self, c, level):
        """Truncating a deep key == re-keying at a shallower bit depth."""
        full = _morton_interleave(c, KEY_BITS)
        coarse = tuple(x >> (KEY_BITS - level) for x in c) if level else (0, 0, 0)
        expected = _morton_interleave(coarse, level) if level else ROOT_KEY
        assert ancestor_at_level(full, level) == expected

    @given(triples)
    @settings(max_examples=40, deadline=None)
    def test_vectorized_level_and_parent_match_scalar(self, cs):
        keys = keys_from_positions(_centers(np.array(cs, dtype=np.int64)), UNIT_BOX)
        levels = key_level(keys)
        parents = parent_key(keys)
        octants = octant_of(keys)
        for k, lvl, par, octa in zip(keys, levels, parents, octants):
            assert key_level(int(k)) == int(lvl) == MAX_LEVEL
            assert parent_key(int(k)) == int(par)
            assert octant_of(int(k)) == int(octa)

    @given(triple, triple, st.integers(min_value=0, max_value=MAX_LEVEL))
    @settings(max_examples=60, deadline=None)
    def test_order_preserved_under_truncation(self, a, b, level):
        """Morton order is hierarchical: ancestors never invert order."""
        ka, kb = _morton_interleave(a, KEY_BITS), _morton_interleave(b, KEY_BITS)
        if ka > kb:
            ka, kb = kb, ka
        assert ancestor_at_level(ka, level) <= ancestor_at_level(kb, level)


class TestHilbert:
    @given(triples, bit_depth)
    @settings(max_examples=60, deadline=None)
    def test_round_trip_across_bit_depths(self, cs, bits):
        coords = np.array(cs, dtype=np.int64) % (1 << bits)
        idx = axes_to_hilbert(coords, bits)
        assert int(idx.max()) < 1 << (3 * bits)
        back = hilbert_to_axes(idx, bits)
        assert np.array_equal(back.astype(np.int64), coords)

    @pytest.mark.parametrize("bits", [1, 2, 3])
    def test_curve_is_a_face_adjacent_bijection(self, bits):
        n = 1 << bits
        g = np.arange(n)
        coords = np.stack(np.meshgrid(g, g, g, indexing="ij"), axis=-1).reshape(-1, 3)
        idx = axes_to_hilbert(coords, bits)
        # Bijection onto [0, 8**bits).
        assert sorted(int(i) for i in idx) == list(range(n**3))
        # Consecutive curve cells share a face (the Hilbert invariant
        # Morton lacks — Morton jumps diagonally between octant blocks).
        walk = coords[np.argsort(idx, kind="stable")]
        steps = np.abs(np.diff(walk.astype(np.int64), axis=0)).sum(axis=1)
        assert np.all(steps == 1)

    @given(triple, triple, bit_depth)
    @settings(max_examples=60, deadline=None)
    def test_distinct_cells_distinct_indices(self, a, b, bits):
        ca = tuple(x % (1 << bits) for x in a)
        cb = tuple(x % (1 << bits) for x in b)
        ia, ib = axes_to_hilbert(np.array([ca, cb], dtype=np.int64), bits)
        assert (ia == ib) == (ca == cb)
