"""Tests for repro.linpack: LU kernel and cluster HPL model."""

import numpy as np
import pytest

from repro.linpack import (
    PAPER_LAM_GFLOPS,
    PAPER_MPICH_GFLOPS,
    ClusterHplModel,
    calibrated_space_simulator_model,
    hpl_flops,
    lu_factor_blocked,
    lu_solve,
    predicted_mpich_gflops,
    run_hpl,
)
from repro.network import LAM_O, MPICH_125


class TestLuKernel:
    def test_factor_solve_small(self):
        rng = np.random.default_rng(0)
        a = rng.random((50, 50)) + np.eye(50)
        b = rng.random(50)
        lu, piv = lu_factor_blocked(a.copy(), block=8)
        x = lu_solve(lu, piv, b)
        assert np.allclose(a @ x, b, atol=1e-10)

    def test_matches_numpy_solution(self):
        rng = np.random.default_rng(1)
        a = rng.random((80, 80)) - 0.5
        b = rng.random(80)
        lu, piv = lu_factor_blocked(a.copy(), block=32)
        x = lu_solve(lu, piv, b)
        assert np.allclose(x, np.linalg.solve(a, b), atol=1e-8)

    def test_block_size_irrelevant_to_result(self):
        rng = np.random.default_rng(2)
        a = rng.random((64, 64)) - 0.5
        b = rng.random(64)
        xs = []
        for block in (1, 7, 64, 200):
            lu, piv = lu_factor_blocked(a.copy(), block=block)
            xs.append(lu_solve(lu, piv, b))
        for x in xs[1:]:
            assert np.allclose(x, xs[0], atol=1e-9)

    def test_pivoting_handles_zero_leading_entry(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        lu, piv = lu_factor_blocked(a.copy(), block=2)
        x = lu_solve(lu, piv, np.array([2.0, 3.0]))
        assert np.allclose(x, [3.0, 2.0])

    def test_singular_detected(self):
        a = np.ones((4, 4))
        with pytest.raises(np.linalg.LinAlgError):
            lu_factor_blocked(a, block=2)

    def test_validation(self):
        with pytest.raises(ValueError):
            lu_factor_blocked(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            lu_factor_blocked(np.eye(4), block=0)

    def test_run_hpl_passes_residual_check(self):
        r = run_hpl(n=192, block=48)
        assert r.passed
        assert r.residual < 16.0
        assert r.gflops > 0

    def test_hpl_flops_formula(self):
        assert hpl_flops(10) == pytest.approx(2.0 / 3.0 * 1000 + 200)


class TestClusterModel:
    def test_calibration_reproduces_lam_result(self):
        model = calibrated_space_simulator_model()
        assert model.gflops() == pytest.approx(PAPER_LAM_GFLOPS, rel=1e-6)

    def test_mpich_prediction_direction_and_magnitude(self):
        # MPICH's slower large-message path must cost performance; the
        # prediction should land within 10% of the measured 665.1.
        predicted = predicted_mpich_gflops()
        assert predicted < PAPER_LAM_GFLOPS
        assert predicted == pytest.approx(PAPER_MPICH_GFLOPS, rel=0.10)

    def test_price_performance_milestone(self):
        # The headline: < $1 per Mflop/s (63.9 cents with the LAM run).
        cost = 483_855.0
        cents_per_mflops = 100.0 * cost / (PAPER_LAM_GFLOPS * 1000.0)
        assert cents_per_mflops == pytest.approx(63.9, rel=0.01)
        assert cents_per_mflops < 100.0

    def test_problem_size_from_memory(self):
        model = ClusterHplModel()
        n = model.problem_size()
        # 288 GB at 80%: N ~ 170k.
        assert 150_000 < n < 190_000

    def test_efficiency_declines_with_procs_at_fixed_n(self):
        model = calibrated_space_simulator_model()
        n = 50_000
        e64 = model.with_procs(64).efficiency(n)
        e288 = model.with_procs(288).efficiency(n)
        assert e288 < e64 <= 1.0

    def test_gflops_grows_with_problem_size(self):
        model = calibrated_space_simulator_model()
        assert model.gflops(170_000) > model.gflops(40_000)

    def test_stack_swap(self):
        model = calibrated_space_simulator_model()
        assert model.with_stack(MPICH_125).gflops() < model.with_stack(LAM_O).gflops()

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterHplModel(n_procs=0)
        with pytest.raises(ValueError):
            ClusterHplModel().problem_size(mem_fraction=0.0)
        with pytest.raises(ValueError):
            ClusterHplModel().time_s(0)
