"""Tests for repro.core.domain: work-weighted decomposition (Fig 6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    decompose,
    morton_traversal_order_2d,
    sample_splitters,
    split_weighted,
)


class TestSplitWeighted:
    def test_uniform_work_even_split(self):
        bounds = split_weighted(np.ones(100), 4)
        assert bounds.tolist() == [0, 25, 50, 75, 100]

    def test_single_piece(self):
        bounds = split_weighted(np.ones(10), 1)
        assert bounds.tolist() == [0, 10]

    def test_skewed_work_balances_by_work_not_count(self):
        work = np.concatenate([np.full(10, 100.0), np.full(90, 1.0)])
        bounds = split_weighted(work, 2)
        cum = np.concatenate([[0.0], np.cumsum(work)])
        halves = cum[bounds[1:]] - cum[bounds[:-1]]
        # Each half within one max item of the ideal share.
        assert abs(halves[0] - halves[1]) <= work.max()

    def test_zero_work_falls_back_to_count(self):
        bounds = split_weighted(np.zeros(12), 3)
        assert bounds.tolist() == [0, 4, 8, 12]

    def test_more_pieces_than_items(self):
        bounds = split_weighted(np.ones(3), 8)
        assert bounds[0] == 0 and bounds[-1] == 3
        assert np.all(np.diff(bounds) >= 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            split_weighted(np.ones(5), 0)
        with pytest.raises(ValueError):
            split_weighted(-np.ones(5), 2)
        with pytest.raises(ValueError):
            split_weighted(np.ones((2, 2)), 2)

    @given(
        st.lists(st.floats(0.0, 100.0), min_size=1, max_size=500),
        st.integers(1, 16),
    )
    @settings(max_examples=50, deadline=None)
    def test_properties(self, work_list, n_pieces):
        work = np.array(work_list)
        bounds = split_weighted(work, n_pieces)
        assert bounds.size == n_pieces + 1
        assert bounds[0] == 0 and bounds[-1] == work.size
        assert np.all(np.diff(bounds) >= 0)
        if work.sum() > 0:
            cum = np.concatenate([[0.0], np.cumsum(work)])
            shares = cum[bounds[1:]] - cum[bounds[:-1]]
            ideal = work.sum() / n_pieces
            assert shares.max() <= ideal + work.max() + 1e-9


class TestDecompose:
    def test_pieces_cover_all_particles(self):
        rng = np.random.default_rng(0)
        pos = rng.random((1000, 3))
        dd = decompose(pos, n_pieces=7)
        assert dd.counts().sum() == 1000
        assert dd.n_pieces == 7

    def test_work_shares_near_one(self):
        rng = np.random.default_rng(1)
        pos = rng.random((2000, 3))
        work = rng.random(2000) + 0.5
        dd = decompose(pos, work, n_pieces=8)
        assert np.all(np.abs(dd.work_shares() - 1.0) < 0.05)

    def test_pieces_are_key_contiguous(self):
        rng = np.random.default_rng(2)
        pos = rng.random((500, 3))
        dd = decompose(pos, n_pieces=4)
        for p in range(4):
            sl = dd.piece(p)
            if sl.stop > sl.start and sl.stop < 500:
                assert dd.keys[sl.stop - 1] <= dd.keys[sl.stop]

    def test_owner_of(self):
        rng = np.random.default_rng(3)
        dd = decompose(rng.random((100, 3)), n_pieces=5)
        for p in range(5):
            sl = dd.piece(p)
            if sl.stop > sl.start:
                assert dd.owner_of(sl.start) == p
                assert dd.owner_of(sl.stop - 1) == p

    def test_piece_out_of_range(self):
        dd = decompose(np.random.default_rng(4).random((10, 3)), n_pieces=2)
        with pytest.raises(ValueError):
            dd.piece(2)

    def test_clustered_particles_balanced_by_work(self):
        # Centrally condensed cloud with work ~ local density proxy:
        # counts become uneven but work shares stay balanced.
        rng = np.random.default_rng(5)
        r = rng.random(3000) ** 4
        d = rng.standard_normal((3000, 3))
        d /= np.linalg.norm(d, axis=1, keepdims=True)
        pos = 0.5 + 0.4 * r[:, None] * d
        work = 1.0 / (r + 0.01)
        dd = decompose(pos, work, n_pieces=6)
        assert np.all(np.abs(dd.work_shares() - 1.0) < 0.1)
        assert dd.counts().max() > 1.5 * dd.counts().min()


class TestSamplingAndCurve:
    def test_sample_splitters_sorted_subset(self):
        rng = np.random.default_rng(6)
        keys = rng.integers(1, 2**60, 1000).astype(np.uint64)
        sample = sample_splitters(keys, np.ones(1000), n_pieces=4, oversample=8)
        assert np.all(np.diff(sample.astype(np.float64)) >= 0)
        assert np.isin(sample, keys).all()
        assert sample.size == 32

    def test_sample_splitters_empty(self):
        out = sample_splitters(np.empty(0, dtype=np.uint64), np.empty(0), 4)
        assert out.size == 0

    def test_morton_curve_is_permutation(self):
        rng = np.random.default_rng(7)
        pos = rng.random((200, 2))
        order = morton_traversal_order_2d(pos)
        assert sorted(order.tolist()) == list(range(200))

    def test_curve_locality(self):
        # The Figure 6 property: consecutive curve points are near each
        # other even for centrally condensed distributions.
        rng = np.random.default_rng(8)
        r = rng.random(1000) ** 3
        ang = rng.random(1000) * 2 * np.pi
        pos = 0.5 + 0.45 * np.column_stack([r * np.cos(ang), r * np.sin(ang)])
        order = morton_traversal_order_2d(pos)
        jumps = np.linalg.norm(np.diff(pos[order], axis=0), axis=1)
        assert np.median(jumps) < 0.05
