"""Tests for repro.machine.perfmodel: roofline timing."""

import pytest

from repro.machine import PerfModel, SPACE_SIMULATOR_NODE, Workload


class TestWorkload:
    def test_arithmetic_intensity(self):
        w = Workload(flops=100.0, mem_bytes=50.0)
        assert w.arithmetic_intensity == pytest.approx(2.0)

    def test_in_cache_intensity_is_infinite(self):
        assert Workload(flops=1.0, mem_bytes=0.0).arithmetic_intensity == float("inf")

    def test_scaled_preserves_intensity(self):
        w = Workload(flops=100.0, mem_bytes=40.0, flop_efficiency=0.5)
        s = w.scaled(3.0)
        assert s.flops == 300.0
        assert s.mem_bytes == 120.0
        assert s.arithmetic_intensity == w.arithmetic_intensity
        assert s.flop_efficiency == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            Workload(flops=-1.0)
        with pytest.raises(ValueError):
            Workload(flops=1.0, flop_efficiency=0.0)
        with pytest.raises(ValueError):
            Workload(flops=1.0, overlap_fraction=2.0)
        with pytest.raises(ValueError):
            Workload(flops=1.0).scaled(-2.0)


class TestPerfModel:
    def setup_method(self):
        self.model = PerfModel(SPACE_SIMULATOR_NODE)

    def test_compute_bound_time(self):
        # 5.06e9 flops at peak should take 1 second.
        w = Workload(flops=5.06e9, mem_bytes=0.0)
        assert self.model.time_s(w) == pytest.approx(1.0, rel=1e-3)

    def test_memory_bound_time(self):
        # Moving the STREAM bandwidth's worth of bytes takes 1 second.
        nbytes = SPACE_SIMULATOR_NODE.stream_mbytes_s * 1e6
        w = Workload(flops=1.0, mem_bytes=nbytes)
        assert self.model.time_s(w) == pytest.approx(1.0, rel=1e-3)

    def test_overlap_is_max_serial_is_sum(self):
        nbytes = SPACE_SIMULATOR_NODE.stream_mbytes_s * 1e6
        overlap = Workload(flops=5.06e9, mem_bytes=nbytes, overlap_fraction=1.0)
        serial = Workload(flops=5.06e9, mem_bytes=nbytes, overlap_fraction=0.0)
        assert self.model.time_s(overlap) == pytest.approx(1.0, rel=1e-3)
        assert self.model.time_s(serial) == pytest.approx(2.0, rel=1e-3)

    def test_interpolated_overlap(self):
        nbytes = SPACE_SIMULATOR_NODE.stream_mbytes_s * 1e6
        half = Workload(flops=5.06e9, mem_bytes=nbytes, overlap_fraction=0.5)
        assert self.model.time_s(half) == pytest.approx(1.5, rel=1e-3)

    def test_flop_efficiency_slows_compute(self):
        fast = Workload(flops=1e9, flop_efficiency=1.0)
        slow = Workload(flops=1e9, flop_efficiency=0.5)
        assert self.model.time_s(slow) == pytest.approx(2 * self.model.time_s(fast))

    def test_mflops_at_peak(self):
        w = Workload(flops=1e9, mem_bytes=0.0)
        assert self.model.mflops(w) == pytest.approx(SPACE_SIMULATOR_NODE.peak_mflops, rel=1e-6)

    def test_ridge_point(self):
        # SS node: 5060 Mflop/s over ~1204 Mbyte/s => ridge near 4.2
        # flops/byte, the number quoted in the module documentation.
        assert self.model.ridge_intensity() == pytest.approx(4.2, rel=0.02)

    def test_memory_bound_workload_insensitive_to_cpu(self):
        slow_cpu = PerfModel(SPACE_SIMULATOR_NODE.with_clocks(cpu_scale=0.5))
        w = Workload(flops=1e6, mem_bytes=1e9)
        assert slow_cpu.time_s(w) == pytest.approx(self.model.time_s(w), rel=1e-3)

    def test_zero_flops_zero_time(self):
        assert self.model.time_s(Workload(flops=0.0)) == 0.0
        assert self.model.mflops(Workload(flops=0.0)) == 0.0
