"""Differential suite pinning the cosmology hot paths to their references.

Every batched fast path added for the kernel-backend routing is held to
its ``*_reference`` twin, per registered backend, across particle
counts N in {0, 1, 2, 1000} and uniform / clustered / single-cell
distributions (fixed seeds throughout):

* CIC deposit and interpolation, and the PM mesh forces built on them,
  are **bit-identical** — the fast deposit is one concatenated
  ``bincount_sum`` whose input order replays the reference's eight
  sequential ``np.add.at`` corner scatters exactly.
* Friends-of-friends catalogs are **bit-identical** — the
  min-label-propagation solver converges to the same component roots
  (the component-minimum index) the reference union-find produces.
* Pair-count histograms are **bit-identical** integers, including
  ``np.histogram``'s closed last bin.
* Power-spectrum bins select identical mode sets; values carry a
  documented ~1e-12 relative tolerance because the reference reduces
  each bin with pairwise-summing ``np.mean`` while the fast path uses
  the sequential ``bincount_sum`` (see ``repro/cosmology/correlation.py``).

Deliberately numpy+pytest only (no hypothesis) so the suite also runs
in the CI ``backends`` matrix leg.
"""

import numpy as np
import pytest

from repro.core.backend import available_backends
from repro.core.procpool import MultiprocessBackend
from repro.cosmology import (
    PMSolver,
    cic_deposit,
    cic_deposit_reference,
    cic_interpolate,
    cic_interpolate_reference,
    friends_of_friends,
    friends_of_friends_reference,
    measured_power_spectrum,
    measured_power_spectrum_reference,
    pair_counts_periodic,
    pair_counts_periodic_reference,
)

#: Registered backends plus a multiprocess instance forced to shard
#: (min_pairs=0) with two workers, so the pool path is exercised even
#: though cosmology's routed ops all run inline by design.
BACKENDS = list(available_backends()) + [
    MultiprocessBackend(workers=2, min_pairs=0),
]

SIZES = [0, 1, 2, 1000]


def _uniform(n, seed=0):
    return np.random.default_rng(seed).random((n, 3))


def _clustered(n, seed=0):
    """A few tight gaussian blobs, wrapped onto the unit torus."""
    rng = np.random.default_rng(seed)
    centers = rng.random((max(1, n // 64), 3))
    which = rng.integers(0, centers.shape[0], n)
    return np.mod(centers[which] + 0.01 * rng.standard_normal((n, 3)), 1.0)


def _single_cell(n, seed=0):
    """All particles inside one CIC/hash cell."""
    rng = np.random.default_rng(seed)
    return 0.503 + 1e-4 * rng.random((n, 3))


DISTRIBUTIONS = {
    "uniform": _uniform,
    "clustered": _clustered,
    "single_cell": _single_cell,
}


def _bname(b):
    return getattr(b, "name", str(b))


@pytest.mark.parametrize("backend", BACKENDS, ids=_bname)
@pytest.mark.parametrize("dist", sorted(DISTRIBUTIONS))
@pytest.mark.parametrize("n", SIZES)
class TestCicBitIdentical:
    def test_deposit(self, backend, dist, n):
        pos = DISTRIBUTIONS[dist](n, seed=n + 1)
        ref = cic_deposit_reference(pos, grid=16)
        got = cic_deposit(pos, grid=16, backend=backend)
        assert np.array_equal(got, ref)

    def test_deposit_weighted(self, backend, dist, n):
        pos = DISTRIBUTIONS[dist](n, seed=n + 2)
        w = np.random.default_rng(n).uniform(0.5, 2.0, n)
        ref = cic_deposit_reference(pos, grid=8, weights=w)
        got = cic_deposit(pos, grid=8, weights=w, backend=backend)
        assert np.array_equal(got, ref)

    def test_interpolate(self, backend, dist, n):
        pos = DISTRIBUTIONS[dist](n, seed=n + 3)
        field = np.random.default_rng(9).standard_normal((8, 8, 8))
        ref = cic_interpolate_reference(field, pos)
        got = cic_interpolate(field, pos, backend=backend)
        assert np.array_equal(got, ref)


@pytest.mark.parametrize("backend", BACKENDS, ids=_bname)
@pytest.mark.parametrize("dist", sorted(DISTRIBUTIONS))
def test_pm_mesh_forces_bit_identical(backend, dist):
    """Deposit is the only routed op in the PM pipeline, so the mesh
    accelerations must be bit-identical across backends."""
    pos = DISTRIBUTIONS[dist](500, seed=31)
    ref = PMSolver(grid=16).accelerations(pos)
    got = PMSolver(grid=16, backend=backend).accelerations(pos)
    assert np.array_equal(got, ref)


@pytest.mark.parametrize("backend", BACKENDS, ids=_bname)
@pytest.mark.parametrize("dist", sorted(DISTRIBUTIONS))
@pytest.mark.parametrize("n", SIZES)
def test_fof_catalogs_bit_identical(backend, dist, n):
    pos = DISTRIBUTIONS[dist](n, seed=n + 5)
    ref = friends_of_friends_reference(pos, linking_length=0.2, min_members=2)
    got = friends_of_friends(pos, linking_length=0.2, min_members=2, backend=backend)
    assert np.array_equal(got.group_id, ref.group_id)
    assert got.n_halos == ref.n_halos
    for h_got, h_ref in zip(got.halos, ref.halos):
        assert np.array_equal(h_got.members, h_ref.members)
        assert h_got.mass == h_ref.mass
        assert np.array_equal(h_got.center, h_ref.center)


@pytest.mark.parametrize("backend", BACKENDS, ids=_bname)
@pytest.mark.parametrize("dist", sorted(DISTRIBUTIONS))
@pytest.mark.parametrize("n", SIZES)
def test_pair_counts_bit_identical(backend, dist, n):
    pos = DISTRIBUTIONS[dist](n, seed=n + 7)
    edges = np.array([0.0, 0.02, 0.05, 0.1, 0.25])
    ref = pair_counts_periodic_reference(pos, edges)
    got = pair_counts_periodic(pos, edges, backend=backend)
    assert got.dtype == ref.dtype
    assert np.array_equal(got, ref)


@pytest.mark.parametrize("backend", BACKENDS, ids=_bname)
def test_pair_counts_closed_last_bin(backend):
    # Separation exactly on the last edge: np.histogram closes that
    # bin, and the searchsorted fast path must replicate it.
    pos = np.array([[0.0, 0.5, 0.5], [0.25, 0.5, 0.5]])
    edges = np.array([0.0, 0.1, 0.25])
    ref = pair_counts_periodic_reference(pos, edges)
    got = pair_counts_periodic(pos, edges, backend=backend)
    assert ref[-1] == 1  # the fixture really is on the edge
    assert np.array_equal(got, ref)


@pytest.mark.parametrize("backend", BACKENDS, ids=_bname)
@pytest.mark.parametrize("dist", sorted(DISTRIBUTIONS))
@pytest.mark.parametrize("n", [1, 2, 1000])
def test_power_spectrum_tolerance(backend, dist, n):
    """Same mode sets; values to the documented ~1e-12 summation-order
    tolerance (np.mean is pairwise, bincount_sum is sequential)."""
    pos = DISTRIBUTIONS[dist](n, seed=n + 9)
    k_ref, p_ref = measured_power_spectrum_reference(pos, grid=16, n_bins=8)
    k_got, p_got = measured_power_spectrum(pos, grid=16, n_bins=8, backend=backend)
    assert k_got.shape == k_ref.shape  # identical surviving-bin sets
    assert np.allclose(k_got, k_ref, rtol=1e-12, atol=0.0)
    assert np.allclose(p_got, p_ref, rtol=1e-12, atol=1e-12)


@pytest.mark.parametrize("fn", [measured_power_spectrum,
                                measured_power_spectrum_reference])
def test_power_spectrum_empty_raises(fn):
    with pytest.raises(ValueError, match="no particles"):
        fn(np.empty((0, 3)), grid=16, n_bins=8)


def test_fof_empty_input():
    for res in (
        friends_of_friends_reference(np.empty((0, 3)), linking_length=0.2),
        friends_of_friends(np.empty((0, 3)), linking_length=0.2),
    ):
        assert res.n_halos == 0
        assert res.group_id.shape == (0,)
        assert res.group_id.dtype == np.int64
