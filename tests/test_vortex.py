"""Tests for repro.vortex: Biot-Savart on the tree."""

import numpy as np
import pytest

from repro.vortex import (
    VortexSystem,
    direct_velocities,
    ring_centroid,
    ring_radius,
    ring_speed_kelvin,
    tree_velocities,
    vortex_ring,
    wl_kernel,
)


def _random_blob(n, seed=0):
    rng = np.random.default_rng(seed)
    pos = rng.standard_normal((n, 3)) * 0.5
    alphas = rng.standard_normal((n, 3)) * 0.1
    return pos, alphas


class TestKernel:
    def test_far_field_limit(self):
        # K_sigma -> 1/r^3 for r >> sigma.
        r2 = np.array([100.0])
        assert wl_kernel(r2, 0.05)[0] == pytest.approx(1.0 / 1000.0, rel=1e-3)

    def test_regular_at_origin(self):
        k = wl_kernel(np.array([0.0]), 0.1)
        assert np.isfinite(k[0])
        assert k[0] == pytest.approx(2.5 * 0.01 / 0.1**5)

    def test_monotone_decreasing(self):
        r2 = np.linspace(0, 4, 500)
        k = wl_kernel(r2, 0.1)
        assert np.all(np.diff(k) < 0)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            wl_kernel(np.array([1.0]), -0.1)


class TestDirect:
    def test_single_particle_induces_no_self_velocity(self):
        pos = np.array([[0.0, 0.0, 0.0]])
        alpha = np.array([[0.0, 0.0, 1.0]])
        u = direct_velocities(pos, alpha, sigma=0.1)
        assert np.allclose(u, 0.0)  # r x alpha = 0 at r = 0

    def test_velocity_of_vortex_line(self):
        # Particles along z approximating an infinite line vortex of
        # circulation Gamma: azimuthal speed Gamma/(2 pi rho).
        n = 2001
        z = np.linspace(-50, 50, n)
        dz = z[1] - z[0]
        pos = np.column_stack([np.zeros(n), np.zeros(n), z])
        gamma = 2.0
        alphas = np.column_stack([np.zeros(n), np.zeros(n), np.full(n, gamma * dz)])
        target = np.array([[1.5, 0.0, 0.0]])
        u = direct_velocities(pos, alphas, target, sigma=0.01)
        expected = gamma / (2.0 * np.pi * 1.5)
        assert u[0, 1] == pytest.approx(expected, rel=1e-3)  # +y (right-handed)
        assert abs(u[0, 0]) < 1e-10 and abs(u[0, 2]) < 1e-10

    def test_blockwise_consistency(self):
        pos, alphas = _random_blob(300, seed=1)
        a = direct_velocities(pos, alphas, block=7)
        b = direct_velocities(pos, alphas, block=1024)
        assert np.allclose(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            direct_velocities(np.zeros((3, 2)), np.zeros((3, 2)))


class TestTree:
    def test_matches_direct(self):
        pos, alphas = _random_blob(800, seed=2)
        exact = direct_velocities(pos, alphas, sigma=0.05)
        approx = tree_velocities(pos, alphas, sigma=0.05, theta=0.4)
        num = np.linalg.norm(approx - exact, axis=1)
        den = np.linalg.norm(exact, axis=1) + 1e-30
        assert np.median(num / den) < 5e-3

    def test_converges_with_theta(self):
        pos, alphas = _random_blob(500, seed=3)
        exact = direct_velocities(pos, alphas, sigma=0.05)
        errs = []
        for theta in (0.9, 0.6, 0.3):
            approx = tree_velocities(pos, alphas, sigma=0.05, theta=theta)
            errs.append(float(np.median(
                np.linalg.norm(approx - exact, axis=1) / (np.linalg.norm(exact, axis=1) + 1e-30)
            )))
        assert errs[0] > errs[2]

    def test_input_order_preserved(self):
        pos, alphas = _random_blob(200, seed=4)
        u = tree_velocities(pos, alphas)
        perm = np.random.default_rng(0).permutation(200)
        u_p = tree_velocities(pos[perm], alphas[perm])
        assert np.allclose(u_p, u[perm])

    def test_validation(self):
        with pytest.raises(ValueError):
            tree_velocities(np.zeros((3, 3)), np.zeros((4, 3)))
        with pytest.raises(ValueError):
            VortexSystem(np.zeros((3, 3)), np.zeros((3, 3)), sigma=0.0)


class TestVortexRing:
    def test_kelvin_speed_formula(self):
        assert ring_speed_kelvin(1.0, 1.0, 0.1) == pytest.approx(
            (np.log(80.0) - 0.25) / (4.0 * np.pi)
        )
        with pytest.raises(ValueError):
            ring_speed_kelvin(1.0, 1.0, 2.0)

    def test_ring_total_circulation_zero(self):
        # A closed loop's circulation vectors sum to zero.
        ring = vortex_ring(64)
        assert np.allclose(ring.total_circulation, 0.0, atol=1e-12)

    def test_ring_impulse_along_axis(self):
        # Linear impulse of a ring: (Gamma pi R^2) z_hat.
        ring = vortex_ring(128, gamma=2.0, radius=1.5)
        impulse = ring.linear_impulse
        assert impulse[2] == pytest.approx(2.0 * np.pi * 1.5**2, rel=1e-3)
        assert abs(impulse[0]) < 1e-12 and abs(impulse[1]) < 1e-12

    def test_ring_translates_at_kelvin_like_speed(self):
        ring = vortex_ring(96, gamma=1.0, radius=1.0, sigma=0.1)
        z0 = ring_centroid(ring)[2]
        r0 = ring_radius(ring)
        dt = 0.05
        for _ in range(8):
            ring.step(dt, theta=0.4)
        z1 = ring_centroid(ring)[2]
        speed = (z1 - z0) / (8 * dt)
        kelvin = ring_speed_kelvin(1.0, 1.0, 0.1)
        # Discrete rings with algebraic cores travel near, not exactly
        # at, the thin-core formula; demand the right sign and 40%.
        assert speed > 0
        assert speed == pytest.approx(kelvin, rel=0.4)
        # The ring stays a ring.
        assert ring_radius(ring) == pytest.approx(r0, rel=0.05)

    def test_step_conserves_circulation(self):
        ring = vortex_ring(48)
        before = ring.alphas.copy()
        ring.step(0.05)
        assert np.array_equal(ring.alphas, before)

    def test_validation(self):
        with pytest.raises(ValueError):
            vortex_ring(4)
        ring = vortex_ring(16)
        with pytest.raises(ValueError):
            ring.step(0.0)
