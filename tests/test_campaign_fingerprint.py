"""Property tests for content-addressed scenario fingerprints.

The campaign engine's dedupe and resume are only sound if a
fingerprint is a *name* for physics content: identical scenarios must
collide always (across key orderings, encodings, and process
restarts), distinct scenarios must collide never (in any corpus we
can sample).  Hypothesis drives both directions; a subprocess with a
different ``PYTHONHASHSEED`` pins restart stability the way the spec
of :func:`repro.core.cellserver.content_fingerprint` promises.
"""

import dataclasses
import json
import os
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import (
    ClusterSpec,
    CosmologySpec,
    SupernovaSpec,
    scenario_fingerprint,
    scenario_fingerprint_hex,
    spec_from_dict,
)
from repro.campaign.fingerprint import canonical_json

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")

cluster_specs = st.builds(
    ClusterSpec,
    n_nodes=st.integers(min_value=1, max_value=4096),
    work_hours=st.floats(min_value=0.1, max_value=1e4, allow_nan=False, allow_infinity=False),
    state_gb_per_node=st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
    restart_hours=st.floats(min_value=0.001, max_value=10.0, allow_nan=False),
)

supernova_specs = st.builds(
    SupernovaSpec,
    n_particles=st.integers(min_value=8, max_value=512),
    n_steps=st.integers(min_value=0, max_value=50),
    seed=st.integers(min_value=0, max_value=2**31),
    omega0=st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    pressure_deficit=st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
)

any_spec = st.one_of(cluster_specs, supernova_specs)


class TestIdenticalContentCollides:
    @given(any_spec)
    def test_deterministic_within_process(self, spec):
        assert scenario_fingerprint(spec) == scenario_fingerprint(spec)
        assert len(scenario_fingerprint(spec)) == 16

    @given(any_spec)
    def test_dict_form_matches_object_form(self, spec):
        assert scenario_fingerprint(spec.to_dict()) == scenario_fingerprint(spec)

    @given(any_spec)
    def test_key_order_is_irrelevant(self, spec):
        d = spec.to_dict()
        reversed_d = dict(reversed(list(d.items())))
        assert list(reversed_d) != list(d)  # genuinely shuffled
        assert scenario_fingerprint(reversed_d) == scenario_fingerprint(d)

    @given(any_spec)
    def test_json_round_trip_preserves_identity(self, spec):
        rebuilt = spec_from_dict(json.loads(json.dumps(spec.to_dict())))
        assert scenario_fingerprint(rebuilt) == scenario_fingerprint(spec)

    def test_stable_across_process_restarts(self):
        """A fresh interpreter — with adversarial hash randomization —
        must reproduce fingerprints byte for byte."""
        specs = [
            ClusterSpec(n_nodes=64),
            CosmologySpec(n_side=4, seed=7),
            SupernovaSpec(n_particles=40),
        ]
        expected = [scenario_fingerprint_hex(s) for s in specs]
        code = (
            "from repro.campaign import (ClusterSpec, CosmologySpec,"
            " SupernovaSpec, scenario_fingerprint_hex)\n"
            "specs = [ClusterSpec(n_nodes=64), CosmologySpec(n_side=4, seed=7),"
            " SupernovaSpec(n_particles=40)]\n"
            "print('\\n'.join(scenario_fingerprint_hex(s) for s in specs))\n"
        )
        for hashseed in ("0", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed,
                       PYTHONPATH=REPO_SRC + os.pathsep + os.environ.get("PYTHONPATH", ""))
            out = subprocess.run(
                [sys.executable, "-c", code], env=env,
                capture_output=True, text=True, timeout=60, check=True,
            )
            assert out.stdout.split() == expected, f"PYTHONHASHSEED={hashseed}"


class TestDistinctContentNeverCollides:
    @given(cluster_specs, cluster_specs)
    @settings(max_examples=200)
    def test_sampled_cluster_corpus(self, a, b):
        if a.to_dict() != b.to_dict():
            assert scenario_fingerprint(a) != scenario_fingerprint(b)

    @given(supernova_specs, supernova_specs)
    @settings(max_examples=200)
    def test_sampled_supernova_corpus(self, a, b):
        if a.to_dict() != b.to_dict():
            assert scenario_fingerprint(a) != scenario_fingerprint(b)

    @given(cluster_specs, supernova_specs)
    def test_kinds_never_alias(self, a, b):
        assert scenario_fingerprint(a) != scenario_fingerprint(b)


class TestEveryParameterIsLoadBearing:
    """Perturbing any single physical parameter must move the digest."""

    @pytest.mark.parametrize("base", [
        ClusterSpec(), CosmologySpec(), SupernovaSpec(),
    ], ids=lambda s: s.kind)
    def test_sensitive_to_each_field(self, base):
        original = scenario_fingerprint(base)
        for field in dataclasses.fields(base):
            value = getattr(base, field.name)
            if isinstance(value, bool):
                bumped = not value
            elif isinstance(value, int):
                bumped = value + 1
            elif isinstance(value, float):
                bumped = value * 1.0000001 + 1e-9
            else:  # pragma: no cover — specs hold scalars only
                raise AssertionError(f"unhandled field type for {field.name}")
            try:
                perturbed = dataclasses.replace(base, **{field.name: bumped})
            except ValueError:
                # Validation rejected the bump (e.g. omega flatness);
                # try the other direction before giving up.
                perturbed = dataclasses.replace(base, **{field.name: value * 0.999})
            assert scenario_fingerprint(perturbed) != original, field.name


class TestCanonicalEncoding:
    def test_compact_sorted_ascii(self):
        assert canonical_json({"b": 1, "a": [True, None]}) == '{"a":[true,null],"b":1}'

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})
