"""Tests for repro.machine.clocking: the Table 2 sensitivity model."""

import pytest

from repro.machine import (
    NORMAL,
    OVERCLOCK,
    SLOW_CPU,
    SLOW_MEM,
    TABLE2_CONFIGS,
    TABLE2_MEASURED,
    ClockConfig,
    WorkloadProfile,
    fit_workload,
    table2_profiles,
)


class TestClockConfigs:
    def test_paper_scale_factors(self):
        assert SLOW_MEM.mem_scale == pytest.approx(0.6)
        assert SLOW_CPU.cpu_scale == pytest.approx(0.75)
        assert OVERCLOCK.cpu_scale == pytest.approx(1.0526, rel=1e-3)
        assert OVERCLOCK.cpu_scale == OVERCLOCK.mem_scale

    def test_four_configs_in_paper_order(self):
        assert [c.name for c in TABLE2_CONFIGS] == ["normal", "slow mem", "slow CPU", "overclock"]

    def test_invalid_scales_rejected(self):
        with pytest.raises(ValueError):
            ClockConfig("bad", 0.0, 1.0)


class TestWorkloadProfile:
    def test_normal_ratio_is_one(self):
        p = WorkloadProfile("x", 100.0, fc=0.4, fm=0.6)
        assert p.rate_ratio(NORMAL) == pytest.approx(1.0)
        assert p.rate(NORMAL) == pytest.approx(100.0)

    def test_pure_memory_workload_tracks_mem_clock(self):
        p = WorkloadProfile("mem", 100.0, fc=0.0, fm=1.0)
        assert p.rate_ratio(SLOW_MEM) == pytest.approx(0.6)
        assert p.rate_ratio(SLOW_CPU) == pytest.approx(1.0)

    def test_pure_cpu_workload_tracks_cpu_clock(self):
        p = WorkloadProfile("cpu", 100.0, fc=1.0, fm=0.0)
        assert p.rate_ratio(SLOW_CPU) == pytest.approx(0.75)
        assert p.rate_ratio(SLOW_MEM) == pytest.approx(1.0)

    def test_overclock_ratio_is_clock_ratio_for_any_mix(self):
        for fm in (0.0, 0.3, 0.9, 1.0):
            p = WorkloadProfile("x", 1.0, fc=1.0 - fm, fm=fm)
            assert p.rate_ratio(OVERCLOCK) == pytest.approx(140.0 / 133.0)

    def test_memory_boundedness(self):
        p = WorkloadProfile("x", 1.0, fc=0.25, fm=0.75)
        assert p.memory_boundedness == pytest.approx(0.75)

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile("x", -1.0, 0.5, 0.5)
        with pytest.raises(ValueError):
            WorkloadProfile("x", 1.0, -0.5, 0.5)
        with pytest.raises(ValueError):
            WorkloadProfile("x", 1.0, 0.0, 0.0)


class TestFitWorkload:
    def test_fit_recovers_known_profile(self):
        truth = WorkloadProfile("truth", 50.0, fc=0.35, fm=0.65)
        fitted = fit_workload(
            "fit", 50.0, truth.rate_ratio(SLOW_MEM), truth.rate_ratio(SLOW_CPU)
        )
        assert fitted.fc == pytest.approx(truth.fc, abs=1e-9)
        assert fitted.fm == pytest.approx(truth.fm, abs=1e-9)

    def test_fit_round_trips_calibration_columns(self):
        # The fitted profile reproduces the two columns it was
        # calibrated from up to the fc+fm~1 consistency slack (the 2x2
        # solve fixes the ratios exactly, but rate_ratio re-normalizes
        # by fc+fm so the normal column stays exact; the residual lands
        # on the calibration columns).
        for name, profile in table2_profiles().items():
            normal, slow_mem, slow_cpu, _ = TABLE2_MEASURED[name]
            slack = abs(profile.consistency - 1.0) + 1e-6
            assert profile.rate(SLOW_MEM) == pytest.approx(slow_mem, rel=slack), name
            assert profile.rate(SLOW_CPU) == pytest.approx(slow_cpu, rel=slack), name

    def test_overclock_prediction_close_to_paper(self):
        # The overclock column is *not* used in calibration; the model
        # prediction (x1.0526 for every benchmark) should land within a
        # few percent of every measured overclock value.
        for name, profile in table2_profiles().items():
            measured = TABLE2_MEASURED[name][3]
            predicted = profile.rate(OVERCLOCK)
            assert predicted == pytest.approx(measured, rel=0.05), name

    def test_stream_is_memory_bound(self):
        profiles = table2_profiles()
        for kernel in ("copy", "add", "scale", "triad"):
            assert profiles[kernel].memory_boundedness > 0.75, kernel

    def test_npb_memory_bound_ranking_matches_paper(self):
        # Paper: "Especially for the NAS benchmarks SP, MG and CG,
        # scaling the memory frequency by 0.6 results in a performance
        # reduction near 0.6" — those three should be the most
        # memory-bound NPB kernels; FT and IS less so.
        profiles = table2_profiles()
        heavy = min(profiles[k].memory_boundedness for k in ("SP", "MG", "CG"))
        assert heavy > profiles["FT"].memory_boundedness
        assert heavy > profiles["IS"].memory_boundedness

    def test_linpack_is_cpu_bound(self):
        # Dense BLAS-3 lives in cache: Linpack should be the most
        # CPU-bound floating-point entry.
        profiles = table2_profiles()
        assert profiles["Linpack"].memory_boundedness < 0.5

    def test_consistency_diagnostic_near_one(self):
        # fc + fm ~ 1 when the two-component model describes the
        # benchmark well; allow the documented slack.
        for name, profile in table2_profiles().items():
            assert 0.8 < profile.consistency < 1.25, (name, profile.consistency)

    def test_fit_rejects_nonsense_ratios(self):
        with pytest.raises(ValueError):
            fit_workload("x", 1.0, -0.5, 0.9)
        with pytest.raises(ValueError):
            # Huge speedup from slowing the machine down is unphysical.
            fit_workload("x", 1.0, 1.4, 1.4)
