"""Property tests for repro.obs: nesting, monotonicity, round-trips.

Four invariants, driven by Hypothesis:

* spans produced by the context-manager API always satisfy
  ``validate_nesting`` — the recorder cannot emit a malformed forest;
* counters are monotone under any sequence of non-negative deltas;
* the Chrome-trace export/parse pair round-trips any span multiset
  after canonical float normalization;
* every span an engine run records in virtual time lies inside
  ``[0, SimResult.elapsed]`` for random rank programs.
"""

from collections import Counter as Multiset

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    Recorder,
    Span,
    canonical_floats,
    chrome_trace,
    parse_chrome_trace,
    validate_nesting,
)
from repro.simmpi import Comm, UniformCost, run

# -- strategies ------------------------------------------------------------

finite_time = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)

span_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz-_.", min_size=1, max_size=12
)


@st.composite
def spans(draw):
    t0 = draw(finite_time)
    dur = draw(st.floats(min_value=0.0, max_value=1e3, allow_nan=False))
    return Span(
        name=draw(span_names),
        t_start=t0,
        t_end=t0 + dur,
        track=draw(st.integers(min_value=0, max_value=7)),
        cat=draw(st.sampled_from(["", "compute", "blocked", "collective", "bench"])),
    )


@st.composite
def nesting_programs(draw):
    """A random sequence of balanced push/pop operations per track."""
    ops = []
    depth = 0
    for _ in range(draw(st.integers(min_value=0, max_value=30))):
        if depth == 0 or draw(st.booleans()):
            ops.append(("push", draw(span_names)))
            depth += 1
        else:
            ops.append(("pop", None))
            depth -= 1
    ops.extend(("pop", None) for _ in range(depth))
    return ops


# -- properties ------------------------------------------------------------


class TestNestingWellFormed:
    @given(nesting_programs(), st.integers(min_value=0, max_value=3))
    @settings(max_examples=100, deadline=None)
    def test_context_manager_spans_always_nest(self, ops, track):
        ticks = iter(range(1, 10_000))
        rec = Recorder(clock=lambda: 0.0)
        rec._clock = lambda: float(next(ticks))
        rec._origin = 0.0
        stack = []
        for op, name in ops:
            if op == "push":
                ctx = rec.span(name, track=track)
                ctx.__enter__()
                stack.append(ctx)
            else:
                stack.pop().__exit__(None, None, None)
        validate_nesting(rec.spans)
        assert len(rec.spans) == sum(1 for op, _ in ops if op == "push")


class TestCounterMonotone:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
                    max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_counter_never_decreases(self, deltas):
        rec = Recorder()
        seen = 0.0
        for d in deltas:
            rec.count("c", d)
            assert rec.counters["c"].value >= seen
            seen = rec.counters["c"].value
        assert seen == sum(deltas)


class TestExportRoundTrip:
    @given(st.lists(spans(), max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_chrome_trace_round_trips_span_multiset(self, span_list):
        doc = chrome_trace(span_list)
        back = parse_chrome_trace(doc)

        def key(s):
            return (s.name, s.track, s.cat,
                    canonical_floats(s.t_start), canonical_floats(s.duration))

        assert Multiset(map(key, back)) == Multiset(map(key, span_list))


class TestVirtualTimeBounds:
    @given(
        st.integers(min_value=1, max_value=5),
        st.lists(
            st.tuples(
                st.sampled_from(["compute", "barrier", "allreduce", "sendrecv"]),
                st.floats(min_value=1e-6, max_value=0.1, allow_nan=False),
            ),
            min_size=1,
            max_size=8,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_engine_spans_inside_elapsed(self, n_ranks, steps):
        def program(comm: Comm):
            for kind, amount in steps:
                if kind == "compute":
                    yield comm.elapse(amount)
                elif kind == "barrier":
                    yield comm.barrier()
                elif kind == "allreduce":
                    yield comm.allreduce(comm.rank)
                elif kind == "sendrecv" and comm.size > 1:
                    peer = (comm.rank + 1) % comm.size
                    req = yield comm.isend(b"x" * 64, dest=peer)
                    yield comm.recv(source=(comm.rank - 1) % comm.size)
                    yield comm.wait(req)

        result = run(program, n_ranks, UniformCost(latency_s=1e-5, mbytes_s=100.0))
        assert result.observer is not None
        for span in result.observer.spans:
            assert span.t_start >= 0.0
            assert span.t_end <= result.elapsed + 1e-12
            assert 0 <= span.track < n_ranks
        validate_nesting(result.observer.spans)
