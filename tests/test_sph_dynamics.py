"""Tests for SPH forces, neutrino transport, and the collapse driver."""

import numpy as np
import pytest

from repro.core import build_tree
from repro.sph import (
    CollapseConfig,
    CollapseSimulation,
    FldParams,
    HybridCollapseEOS,
    IdealGas,
    ViscosityParams,
    adapt_smoothing,
    add_rotation,
    angular_momentum_by_angle,
    compute_sph_forces,
    cone_vs_equator_angular_momentum,
    find_neighbors,
    lane_emden,
    neutrino_step,
    polytrope_particles,
)


def _gas_ball(n=200, seed=0):
    rng = np.random.default_rng(seed)
    pos = rng.standard_normal((n, 3)) * 0.3
    m = np.full(n, 1.0 / n)
    tree, dens = adapt_smoothing(pos, m, n_target=32)
    u = np.full(n, 1.0)
    gas = IdealGas()
    rho = dens.rho
    return tree, dens, rho, gas.pressure(rho, u), gas.sound_speed(rho, u), dens.h


class TestSphForces:
    def test_momentum_conservation(self):
        tree, dens, rho, p, cs, h = _gas_ball()
        vel = np.zeros((tree.n_particles, 3))
        f = compute_sph_forces(tree, dens.neighbors, rho=rho, pressure=p,
                               sound_speed=cs, velocities=vel, h=h)
        net = (tree.masses[:, None] * f.dv_dt).sum(axis=0)
        assert np.allclose(net, 0.0, atol=1e-12)

    def test_energy_conservation_with_viscosity(self):
        tree, dens, rho, p, cs, h = _gas_ball(seed=1)
        rng = np.random.default_rng(2)
        vel = rng.standard_normal((tree.n_particles, 3)) * 0.2
        f = compute_sph_forces(tree, dens.neighbors, rho=rho, pressure=p,
                               sound_speed=cs, velocities=vel, h=h)
        # d(KE)/dt + d(U)/dt = 0 for the compatible discretization.
        dke = float(np.sum(tree.masses[:, None] * vel * f.dv_dt))
        du = float(np.sum(tree.masses * f.du_dt))
        assert dke + du == pytest.approx(0.0, abs=1e-10 * max(abs(dke), 1.0))

    def test_pressure_gradient_pushes_outward(self):
        # A dense hot center must accelerate particles outward.
        tree, dens, rho, p, cs, h = _gas_ball(seed=3)
        vel = np.zeros((tree.n_particles, 3))
        f = compute_sph_forces(tree, dens.neighbors, rho=rho, pressure=p,
                               sound_speed=cs, velocities=vel, h=h)
        radial = np.einsum("ij,ij->i", f.dv_dt, tree.positions)
        # Mass-weighted mean radial acceleration is positive (expansion).
        assert np.average(radial, weights=tree.masses) > 0

    def test_uniform_pressure_no_net_force(self):
        # Uniform lattice, uniform pressure: interior forces vanish.
        n_side = 7
        g = (np.arange(n_side) + 0.5) / n_side
        pos = np.stack(np.meshgrid(g, g, g), axis=-1).reshape(-1, 3)
        n = pos.shape[0]
        m = np.full(n, 1.0 / n)
        tree, dens = adapt_smoothing(pos, m, n_target=40)
        rho = np.full(n, 1.0)  # force uniform state
        p = np.full(n, 2.0)
        cs = np.ones(n)
        f = compute_sph_forces(tree, dens.neighbors, rho=rho, pressure=p,
                               sound_speed=cs, velocities=np.zeros((n, 3)), h=dens.h)
        interior = np.all((tree.positions > 0.3) & (tree.positions < 0.7), axis=1)
        typical = np.abs(f.dv_dt[~interior]).max()
        assert np.abs(f.dv_dt[interior]).max() < 0.05 * typical

    def test_viscosity_only_in_compression(self):
        tree, dens, rho, p, cs, h = _gas_ball(seed=4)
        n = tree.n_particles
        # Pure expansion: v = r. No pair approaches, so viscosity off;
        # du/dt reduces to adiabatic cooling (negative everywhere).
        vel = tree.positions.copy()
        f = compute_sph_forces(tree, dens.neighbors, rho=rho, pressure=p,
                               sound_speed=cs, velocities=vel, h=h,
                               visc=ViscosityParams(alpha=1.0, beta=2.0))
        assert np.all(f.du_dt < 1e-12)
        # Pure compression: v = -r. Heating (shock + adiabatic) positive.
        f2 = compute_sph_forces(tree, dens.neighbors, rho=rho, pressure=p,
                                sound_speed=cs, velocities=-vel, h=h)
        assert np.all(f2.du_dt > -1e-12)
        assert f2.max_signal_speed > f.max_signal_speed  # viscous signal

    def test_validation(self):
        tree, dens, rho, p, cs, h = _gas_ball(seed=5)
        with pytest.raises(ValueError):
            compute_sph_forces(tree, dens.neighbors, rho=rho[:-1], pressure=p,
                               sound_speed=cs, velocities=np.zeros((tree.n_particles, 3)), h=h)
        with pytest.raises(ValueError):
            ViscosityParams(alpha=-1.0)


class TestNeutrinoTransport:
    def test_total_energy_conserved_minus_escape(self):
        tree, dens, rho, p, cs, h = _gas_ball(seed=6)
        n = tree.n_particles
        u = np.full(n, 2.0)
        e_nu = np.full(n, 0.1)
        dt = 1e-3
        before = float(np.sum(tree.masses * (u + e_nu)))
        step = neutrino_step(tree, dens.neighbors, rho=rho, u=u, e_nu=e_nu, h=h, dt=dt)
        after = float(
            np.sum(tree.masses * (u + step.du_dt_gas * dt + step.e_nu))
        ) + step.luminosity * dt
        assert after == pytest.approx(before, rel=1e-10)

    def test_emission_fills_field_toward_equilibrium(self):
        tree, dens, rho, p, cs, h = _gas_ball(seed=7)
        n = tree.n_particles
        u = np.full(n, 2.0)
        step = neutrino_step(tree, dens.neighbors, rho=rho, u=u,
                             e_nu=np.zeros(n), h=h, dt=1e-3,
                             surface_rho=0.0)  # no escape
        assert np.all(step.e_nu >= 0)
        assert step.e_nu.max() > 0  # gas emitted neutrinos
        assert np.all(step.du_dt_gas <= 1e-15)  # gas cooled

    def test_diffusion_smooths_gradients(self):
        tree, dens, rho, p, cs, h = _gas_ball(seed=8)
        n = tree.n_particles
        e_nu = np.zeros(n)
        hot = np.argmax(rho)
        e_nu[hot] = 1.0
        step = neutrino_step(
            tree, dens.neighbors, rho=rho, u=np.zeros(n), e_nu=e_nu, h=h,
            dt=1e-4, params=FldParams(emit_rate=1e-12), surface_rho=0.0,
        )
        assert step.e_nu[hot] < 1.0  # peak spread out
        assert (step.e_nu > 0).sum() > 1

    def test_luminosity_from_surface(self):
        tree, dens, rho, p, cs, h = _gas_ball(seed=9)
        n = tree.n_particles
        step = neutrino_step(tree, dens.neighbors, rho=rho, u=np.full(n, 2.0),
                             e_nu=np.full(n, 0.5), h=h, dt=1e-3)
        assert step.luminosity > 0

    def test_validation(self):
        tree, dens, rho, p, cs, h = _gas_ball(seed=10)
        n = tree.n_particles
        with pytest.raises(ValueError):
            neutrino_step(tree, dens.neighbors, rho=rho, u=np.zeros(n),
                          e_nu=np.zeros(n), h=h, dt=0.0)
        with pytest.raises(ValueError):
            FldParams(c_light=0.0)


class TestLaneEmden:
    def test_n0_analytic(self):
        # n=0: theta = 1 - xi^2/6, zero at sqrt(6).
        _, _, xi1, _ = lane_emden(0.0)
        assert xi1 == pytest.approx(np.sqrt(6.0), rel=1e-3)

    def test_n1_analytic(self):
        # n=1: theta = sin(xi)/xi, zero at pi.
        _, _, xi1, _ = lane_emden(1.0)
        assert xi1 == pytest.approx(np.pi, rel=1e-3)

    def test_n3_standard_value(self):
        # The n=3 polytrope: xi1 = 6.8968.
        _, _, xi1, _ = lane_emden(3.0)
        assert xi1 == pytest.approx(6.897, rel=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            lane_emden(-1.0)


class TestPolytropeSampling:
    def test_unit_mass_and_radius(self):
        pos, m, u = polytrope_particles(2000, seed=0)
        assert m.sum() == pytest.approx(1.0)
        r = np.linalg.norm(pos, axis=1)
        assert r.max() <= 1.0 + 1e-9
        assert r.min() > 0.0

    def test_centrally_condensed(self):
        pos, m, _ = polytrope_particles(4000, seed=1)
        r = np.linalg.norm(pos, axis=1)
        # Half the mass of an n=3 polytrope sits inside ~0.28 R.
        assert np.median(r) == pytest.approx(0.28, abs=0.05)

    def test_internal_energy_decreases_outward(self):
        pos, _, u = polytrope_particles(3000, seed=2)
        r = np.linalg.norm(pos, axis=1)
        inner = u[r < 0.2].mean()
        outer = u[r > 0.8].mean()
        assert inner > outer

    def test_rotation_profile(self):
        pos, _, _ = polytrope_particles(1000, seed=3)
        vel = add_rotation(pos, omega0=0.4, r0=0.3)
        # v is azimuthal: v . r_cyl = 0, v_z = 0.
        assert np.allclose(vel[:, 2], 0.0)
        dot = vel[:, 0] * pos[:, 0] + vel[:, 1] * pos[:, 1]
        assert np.allclose(dot, 0.0, atol=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            polytrope_particles(0)
        with pytest.raises(ValueError):
            add_rotation(np.zeros((3, 3)), omega0=-1.0)


@pytest.mark.slow
class TestCollapse:
    def test_collapse_reaches_bounce(self):
        pos, m, u = polytrope_particles(300, seed=1)
        vel = add_rotation(pos, omega0=0.4)
        cfg = CollapseConfig()
        sim = CollapseSimulation(pos, vel, m, u, cfg)
        for _ in range(200):
            sim.step()
            if sim.history.bounced(cfg.eos.rho_nuc):
                break
        assert sim.history.bounced(cfg.eos.rho_nuc)
        assert sim.history.max_density > cfg.eos.rho_nuc

    def test_angular_momentum_concentrates_at_equator(self):
        pos, m, u = polytrope_particles(300, seed=2)
        vel = add_rotation(pos, omega0=0.4)
        sim = CollapseSimulation(pos, vel, m, u)
        for _ in range(60):
            sim.step()
        centers, j = angular_momentum_by_angle(sim.positions, sim.velocities, m)
        assert j[-1] > 5.0 * max(j[0], 1e-12)  # equator >> pole
        l_cone, l_eq = cone_vs_equator_angular_momentum(sim.positions, sim.velocities, m)
        assert l_eq > 10.0 * max(l_cone, 1e-12)

    def test_neutrino_luminosity_rises_during_collapse(self):
        pos, m, u = polytrope_particles(250, seed=3)
        vel = add_rotation(pos, omega0=0.3)
        sim = CollapseSimulation(pos, vel, m, u)
        for _ in range(40):
            sim.step()
        lum = sim.history.neutrino_luminosity
        assert max(lum[20:]) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CollapseConfig(pressure_deficit=0.0)
        pos, m, u = polytrope_particles(50, seed=4)
        sim = CollapseSimulation(pos, np.zeros_like(pos), m, u)
        with pytest.raises(ValueError):
            sim.step(dt=-1.0)
        with pytest.raises(ValueError):
            sim.run(-1)
