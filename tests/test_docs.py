"""The documentation stays true: every bench script PAPER_MAP.md names
exists, every bench script is mapped, the EXPERIMENTS.md codes it
references are real headings, and README links both docs."""

import re
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
ARCHITECTURE = REPO / "docs" / "ARCHITECTURE.md"
PAPER_MAP = REPO / "docs" / "PAPER_MAP.md"
README = REPO / "README.md"
EXPERIMENTS = REPO / "EXPERIMENTS.md"


def test_docs_exist():
    assert ARCHITECTURE.is_file()
    assert PAPER_MAP.is_file()


def test_readme_links_both_docs():
    text = README.read_text()
    assert "docs/ARCHITECTURE.md" in text
    assert "docs/PAPER_MAP.md" in text


def test_every_mapped_bench_script_exists():
    named = set(re.findall(r"benchmarks/(bench_\w+\.py)", PAPER_MAP.read_text()))
    assert named, "PAPER_MAP.md names no bench scripts"
    missing = sorted(s for s in named if not (REPO / "benchmarks" / s).is_file())
    assert not missing, f"PAPER_MAP.md names nonexistent bench scripts: {missing}"


def test_every_bench_script_is_mapped():
    on_disk = {p.name for p in (REPO / "benchmarks").glob("bench_*.py")}
    named = set(re.findall(r"benchmarks/(bench_\w+\.py)", PAPER_MAP.read_text()))
    unmapped = sorted(on_disk - named)
    assert not unmapped, f"bench scripts missing from PAPER_MAP.md: {unmapped}"


def test_experiments_codes_are_real_headings():
    # The map's last column uses the `##` heading codes of
    # EXPERIMENTS.md (T5, F4/F5, S21b, "Ablations", ...).
    headings = EXPERIMENTS.read_text()
    codes = set()
    for line in PAPER_MAP.read_text().splitlines():
        cells = [c.strip() for c in line.strip().strip("|").split("|")]
        if len(cells) >= 4 and cells[0] not in ("paper artifact", "study") \
                and not set(cells[0]) <= {"-", " "}:
            codes.update(cells[-1].split("/") if "/" in cells[-1] else [cells[-1]])
    codes.discard("")
    for code in sorted(codes):
        assert re.search(rf"^## .*\b{re.escape(code)}\b", headings, re.M), \
            f"EXPERIMENTS.md has no heading for {code!r}"


def test_mapped_modules_import():
    # Every `repro.*` dotted name in both docs must be importable — the
    # docs may not reference modules that have been moved or renamed.
    import importlib

    names = set()
    for doc in (ARCHITECTURE, PAPER_MAP):
        names.update(re.findall(r"`(repro(?:\.\w+)+)`", doc.read_text()))
    assert names
    for name in sorted(names):
        mod = name
        # Trailing attribute like repro.core.CellCache: import the parent.
        parts = name.split(".")
        if parts[-1][0].isupper():
            mod = ".".join(parts[:-1])
        importlib.import_module(mod)
