"""The documentation stays true: every bench script PAPER_MAP.md names
exists, every bench script is mapped, the EXPERIMENTS.md codes it
references are real headings, README links every doc, every relative
markdown link resolves, and the public pipeline/campaign/wallclock
docstring examples pass as doctests."""

import doctest
import importlib
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
ARCHITECTURE = REPO / "docs" / "ARCHITECTURE.md"
PAPER_MAP = REPO / "docs" / "PAPER_MAP.md"
USER_GUIDE = REPO / "docs" / "USER_GUIDE.md"
COOKBOOK = REPO / "docs" / "COOKBOOK.md"
README = REPO / "README.md"
EXPERIMENTS = REPO / "EXPERIMENTS.md"

#: Public modules whose docstring examples are part of the documented
#: surface — their doctests run here even when CI's broader
#: --doctest-modules pass is not in play.
DOCTESTED_MODULES = [
    "repro.pipeline",
    "repro.pipeline.distributions",
    "repro.pipeline.driver",
    "repro.pipeline.stages",
    "repro.campaign.spec",
    "repro.obs.wallclock",
]


def test_docs_exist():
    assert ARCHITECTURE.is_file()
    assert PAPER_MAP.is_file()
    assert USER_GUIDE.is_file()
    assert COOKBOOK.is_file()


def test_readme_links_every_doc():
    text = README.read_text()
    assert "docs/ARCHITECTURE.md" in text
    assert "docs/PAPER_MAP.md" in text
    assert "docs/USER_GUIDE.md" in text
    assert "docs/COOKBOOK.md" in text


def test_relative_markdown_links_resolve():
    """Every relative link in the markdown corpus points at a real
    file (anchors stripped; external URLs out of scope)."""
    corpus = [README, EXPERIMENTS, *sorted((REPO / "docs").glob("*.md"))]
    broken = []
    for doc in corpus:
        for target in re.findall(r"\]\(([^)]+)\)", doc.read_text()):
            if target.startswith(("http://", "https://", "#")):
                continue
            path = target.split("#", 1)[0]
            if not (doc.parent / path).exists():
                broken.append(f"{doc.relative_to(REPO)} -> {target}")
    assert not broken, "broken relative links:\n" + "\n".join(broken)


@pytest.mark.parametrize("module_name", DOCTESTED_MODULES)
def test_public_docstring_examples(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module_name} has no doctests"
    assert result.failed == 0


def test_every_mapped_bench_script_exists():
    named = set(re.findall(r"benchmarks/(bench_\w+\.py)", PAPER_MAP.read_text()))
    assert named, "PAPER_MAP.md names no bench scripts"
    missing = sorted(s for s in named if not (REPO / "benchmarks" / s).is_file())
    assert not missing, f"PAPER_MAP.md names nonexistent bench scripts: {missing}"


def test_every_bench_script_is_mapped():
    on_disk = {p.name for p in (REPO / "benchmarks").glob("bench_*.py")}
    named = set(re.findall(r"benchmarks/(bench_\w+\.py)", PAPER_MAP.read_text()))
    unmapped = sorted(on_disk - named)
    assert not unmapped, f"bench scripts missing from PAPER_MAP.md: {unmapped}"


def test_experiments_codes_are_real_headings():
    # The map's last column uses the `##` heading codes of
    # EXPERIMENTS.md (T5, F4/F5, S21b, "Ablations", ...).
    headings = EXPERIMENTS.read_text()
    codes = set()
    for line in PAPER_MAP.read_text().splitlines():
        cells = [c.strip() for c in line.strip().strip("|").split("|")]
        if len(cells) >= 4 and cells[0] not in ("paper artifact", "study") \
                and not set(cells[0]) <= {"-", " "}:
            codes.update(cells[-1].split("/") if "/" in cells[-1] else [cells[-1]])
    codes.discard("")
    for code in sorted(codes):
        assert re.search(rf"^## .*\b{re.escape(code)}\b", headings, re.M), \
            f"EXPERIMENTS.md has no heading for {code!r}"


def test_mapped_modules_import():
    # Every `repro.*` dotted name in both docs must be importable — the
    # docs may not reference modules that have been moved or renamed.
    import importlib

    names = set()
    for doc in (ARCHITECTURE, PAPER_MAP):
        names.update(re.findall(r"`(repro(?:\.\w+)+)`", doc.read_text()))
    assert names
    for name in sorted(names):
        mod = name
        # Trailing attribute like repro.core.CellCache: import the parent.
        parts = name.split(".")
        if parts[-1][0].isupper():
            mod = ".".join(parts[:-1])
        importlib.import_module(mod)
