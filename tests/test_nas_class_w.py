"""Class-W NPB kernel verification: the mini-kernels at a real size.

Class S proves correctness cheaply; class W (the workstation class) is
8-60x larger and exercises deeper recursions (MG descends two more
levels), larger sparse systems (CG n=7000), and genuinely multi-MB
working sets — where vectorization or indexing bugs that class S can
hide would surface.
"""

import pytest

from repro.nas import (
    problem,
    run_cg,
    run_ft,
    run_is,
    run_lu,
    run_mg,
    run_sp,
    run_bt,
    total_ops,
)


@pytest.mark.slow
class TestClassW:
    def test_cg_w(self):
        r = run_cg("W")
        assert r.verified
        assert 10.0 < r.zeta < 100.0

    def test_mg_w(self):
        r = run_mg("W")  # 128^3 grid, 4 V-cycles
        assert r.verified
        assert r.rnorms[-1] < 2e-3 * r.rnorms[0]

    def test_ft_w(self):
        r = run_ft("W")  # 128 x 128 x 32
        assert r.verified

    def test_is_w(self):
        assert run_is("W").verified  # 2^20 keys

    def test_bt_w(self):
        r = run_bt("W")  # 24^3 ADI
        assert r.verified
        assert r.amplitude_error < 1e-10

    def test_sp_w(self):
        assert run_sp("W").verified  # 36^3 pentadiagonal ADI

    def test_lu_w(self):
        r = run_lu("W")  # 33^3 SSOR (no direct reference at this size)
        assert r.verified
        assert r.final_residual < 1e-9

    def test_w_is_substantially_bigger_than_s(self):
        # FT's official W class (128x128x32) is only 2x its S class;
        # every other benchmark grows by 5x or more.
        for bench in ("CG", "MG", "IS", "BT", "SP", "LU"):
            assert total_ops(problem(bench, "W")) > 5.0 * total_ops(problem(bench, "S")), bench
        assert total_ops(problem("FT", "W")) > 1.5 * total_ops(problem("FT", "S"))
