"""Tests for repro.core.outofcore: disk-backed force evaluation."""

import os

import numpy as np
import pytest

from repro.core import direct_accelerations, tree_accelerations
from repro.core.outofcore import OutOfCoreParticles, out_of_core_accelerations


@pytest.fixture
def store(tmp_path):
    rng = np.random.default_rng(3)
    pos = rng.random((1200, 3))
    m = rng.random(1200) + 0.1
    s = OutOfCoreParticles.create(pos, m, directory=str(tmp_path))
    yield s, pos, m
    s.cleanup()


class TestStore:
    def test_round_trip_through_disk(self, store):
        s, pos, m = store
        assert np.array_equal(np.asarray(s.positions), pos)
        assert np.array_equal(np.asarray(s.masses), m)
        assert s.n_particles == 1200

    def test_files_exist_on_disk(self, store):
        s, _, _ = store
        assert os.path.exists(os.path.join(s.directory, "positions.npy"))
        assert os.path.exists(os.path.join(s.directory, "masses.npy"))

    def test_cleanup_removes_files(self, tmp_path):
        s = OutOfCoreParticles.create(np.random.rand(10, 3), np.ones(10), str(tmp_path / "x"))
        s.cleanup()
        assert not os.path.exists(os.path.join(s.directory, "positions.npy"))

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            OutOfCoreParticles.create(np.zeros((5, 2)), np.ones(5), str(tmp_path / "a"))
        with pytest.raises(ValueError):
            OutOfCoreParticles.create(np.zeros((5, 3)), np.ones(4), str(tmp_path / "b"))


class TestOutOfCoreForces:
    def test_matches_in_core_treecode(self, store):
        s, pos, m = store
        ooc = out_of_core_accelerations(s, theta=0.5, eps=0.05, chunk=256)
        ic = tree_accelerations(pos, m, theta=0.5, eps=0.05)
        # Identical tree, identical MAC: identical results.
        assert np.allclose(ooc.accelerations, ic.accelerations, rtol=1e-12, atol=1e-14)
        assert np.allclose(ooc.potentials, ic.potentials, rtol=1e-12, atol=1e-14)
        assert ooc.counts.p2p == ic.counts.p2p
        assert ooc.counts.p2c == ic.counts.p2c

    def test_matches_direct_physics(self, store):
        s, pos, m = store
        ooc = out_of_core_accelerations(s, theta=0.4, eps=0.05, chunk=300)
        exact = direct_accelerations(pos, m, eps=0.05)
        rel = np.linalg.norm(ooc.accelerations - exact.accelerations, axis=1) / np.linalg.norm(
            exact.accelerations, axis=1
        )
        assert np.median(rel) < 1e-3

    def test_chunk_size_does_not_change_answer(self, store):
        s, _, _ = store
        a = out_of_core_accelerations(s, theta=0.6, eps=0.05, chunk=128)
        b = out_of_core_accelerations(s, theta=0.6, eps=0.05, chunk=1200)
        assert np.allclose(a.accelerations, b.accelerations)
        assert a.chunks_processed > b.chunks_processed

    def test_chunk_accounting(self, store):
        s, _, _ = store
        r = out_of_core_accelerations(s, theta=0.6, eps=0.05, chunk=200)
        assert r.chunks_processed == 6

    def test_residency_bounded_at_scale(self, tmp_path):
        # Locality pays off once N is large enough that near fields are
        # a small fraction of the volume: peak resident particles stay
        # well under N.
        rng = np.random.default_rng(9)
        n = 4000
        s = OutOfCoreParticles.create(rng.random((n, 3)), np.ones(n), str(tmp_path / "big"))
        r = out_of_core_accelerations(s, theta=0.6, eps=0.01, chunk=256)
        assert r.peak_resident_particles < 0.6 * n
        s.cleanup()

    def test_validation(self, store):
        s, _, _ = store
        with pytest.raises(ValueError):
            out_of_core_accelerations(s, chunk=4, bucket_size=32)
