"""Tests for the exact Riemann solver and the SPH shock tube."""

import numpy as np
import pytest

from repro.sph.hydro import HydroSimulation, sod_tube_particles
from repro.sph.riemann import (
    SOD_LEFT,
    SOD_RIGHT,
    RiemannState,
    sample,
    sod_solution,
    solve_star,
)


class TestExactSolver:
    def test_sod_star_state_matches_literature(self):
        p, u = solve_star(SOD_LEFT, SOD_RIGHT)
        assert p == pytest.approx(0.30313, abs=2e-5)
        assert u == pytest.approx(0.92745, abs=2e-5)

    def test_sod_star_densities(self):
        x = np.array([0.5, 1.1])  # xi just left/right of the contact at u*=0.927
        rho, u, p = sample(x, SOD_LEFT, SOD_RIGHT)
        assert rho[0] == pytest.approx(0.42632, abs=1e-4)  # behind the fan
        assert rho[1] == pytest.approx(0.26557, abs=1e-4)  # behind the shock

    def test_symmetric_problem_is_symmetric(self):
        # Mirrored states: u* = 0 by symmetry.
        left = RiemannState(1.0, 1.0, 1.0)
        right = RiemannState(1.0, -1.0, 1.0)
        p, u = solve_star(left, right)
        assert u == pytest.approx(0.0, abs=1e-10)
        assert p > 1.0  # colliding streams compress

    def test_trivial_problem_uniform(self):
        s = RiemannState(1.0, 0.5, 1.0)
        rho, u, p = sample(np.linspace(-1, 2, 7), s, s)
        assert np.allclose(rho, 1.0)
        assert np.allclose(u, 0.5)
        assert np.allclose(p, 1.0)

    def test_solution_profile_monotone_density(self):
        x = np.linspace(-0.5, 0.5, 400)
        rho, u, p = sod_solution(x, 0.2)
        # Sod density decreases from left plateau to right plateau with
        # exactly two interior jumps (contact, shock).
        assert rho[0] == pytest.approx(1.0)
        assert rho[-1] == pytest.approx(0.125)
        assert np.all(np.diff(rho) < 1e-9)

    def test_pressure_continuous_across_contact(self):
        x = np.array([0.92745 * 0.2 - 1e-6, 0.92745 * 0.2 + 1e-6])
        _, _, p = sod_solution(x, 0.2)
        assert p[0] == pytest.approx(p[1], rel=1e-6)

    def test_vacuum_detected(self):
        left = RiemannState(1.0, -10.0, 0.01)
        right = RiemannState(1.0, 10.0, 0.01)
        with pytest.raises(ValueError):
            solve_star(left, right)

    def test_validation(self):
        with pytest.raises(ValueError):
            RiemannState(-1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            solve_star(SOD_LEFT, SOD_RIGHT, gamma=1.0)
        with pytest.raises(ValueError):
            sod_solution(np.zeros(3), 0.0)


class TestHydroDriver:
    def test_uniform_gas_stays_uniform(self):
        # A uniform lattice with uniform u has no net forces: nothing moves.
        n_side = 6
        g = (np.arange(n_side) + 0.5) / n_side
        pos = np.stack(np.meshgrid(g, g, g), axis=-1).reshape(-1, 3)
        n = pos.shape[0]
        sim = HydroSimulation(pos, np.zeros((n, 3)), np.full(n, 1.0 / n), np.ones(n))
        sim.step(dt=1e-4)
        # Interior particles essentially static (edges may breathe).
        interior = np.all((sim.positions > 0.3) & (sim.positions < 0.7), axis=1)
        assert np.abs(sim.velocities[interior]).max() < 0.05

    def test_energy_conserved_short_run(self):
        rng = np.random.default_rng(0)
        pos = rng.random((200, 3))
        sim = HydroSimulation(
            pos, np.zeros((200, 3)), np.full(200, 1.0 / 200), np.ones(200)
        )
        e0 = sim.total_energy()
        for _ in range(5):
            sim.step(dt=2e-3)
        # The rates are exactly conservative; the explicit integrator
        # drifts at O(dt) per step — tiny at this step size.
        assert sim.total_energy() == pytest.approx(e0, rel=1e-3)
        # Halving dt must shrink the drift (first-order integrator).
        sim2 = HydroSimulation(
            pos.copy(), np.zeros((200, 3)), np.full(200, 1.0 / 200), np.ones(200)
        )
        for _ in range(10):
            sim2.step(dt=1e-3)
        drift1 = abs(sim.total_energy() - e0)
        drift2 = abs(sim2.total_energy() - e0)
        assert drift2 < drift1

    def test_validation(self):
        with pytest.raises(ValueError):
            HydroSimulation(np.zeros((3, 2)), np.zeros((3, 3)), np.ones(3), np.ones(3))
        with pytest.raises(ValueError):
            sod_tube_particles(nx_left=2)

    def test_sod_setup_density_jump(self):
        pos, vel, m, u = sod_tube_particles(nx_left=16, cross=6)
        sim = HydroSimulation(pos, vel, m, u)
        rho = sim.density()
        x = pos[:, 0]
        left = np.median(rho[(x > -0.4) & (x < -0.1)])
        right = np.median(rho[(x > 0.1) & (x < 0.4)])
        # The 8:1 jump (open edges depress both sides equally).
        assert left / right == pytest.approx(8.0, rel=0.3)
        # Pressure jump 10:1 through u: p = (gamma-1) rho u.
        n_l = (pos[:, 0] < 0).sum()
        assert u[0] * 1.0 == pytest.approx(u[-1] * 0.125 * 10.0, rel=1e-9)


@pytest.mark.slow
class TestSodShockTube:
    def test_wave_structure_against_exact_solution(self):
        pos, vel, m, u = sod_tube_particles(nx_left=28, cross=10, width=0.4)
        sim = HydroSimulation(pos, vel, m, u, n_target=40)
        e0 = sim.total_energy()
        sim.run_to(0.07)
        rho = sim.density()
        x, y, z = sim.positions.T
        core = (np.abs(y - 0.2) < 0.1) & (np.abs(z - 0.2) < 0.1)
        vx = sim.velocities[:, 0]

        def med(arr, lo, hi):
            sel = core & (x > lo) & (x < hi)
            assert sel.sum() >= 4, (lo, hi)
            return float(np.median(arr[sel]))

        left = med(rho, -0.30, -0.15)
        star_l = med(rho, 0.00, 0.06)
        right = med(rho, 0.22, 0.36)
        # Plateau levels (exact: 1.0, 0.426, 0.125).
        assert left == pytest.approx(1.0, rel=0.10)
        assert star_l == pytest.approx(0.426, rel=0.15)
        assert right == pytest.approx(0.125, rel=0.20)
        # Ordering through the wave pattern.
        assert left > star_l > right
        # Post-shock velocity plateau (exact u* = 0.927; open-boundary
        # SPH at this N overshoots by ~20%).
        u_star = med(vx, 0.01, 0.10)
        assert u_star == pytest.approx(0.927, rel=0.35)
        assert med(vx, -0.30, -0.15) == pytest.approx(0.0, abs=0.05)
        # Shock front within the right neighborhood (exact x = 0.123):
        # last core location with significant forward motion, excluding
        # the open tube end.
        moving = core & (vx > 0.3) & (x < 0.35)
        shock_x = float(x[moving].max())
        assert 0.08 < shock_x < 0.25
        # Total energy conserved through the shock to integrator order
        # (viscosity converts kinetic to thermal; the sum drifts only
        # with the explicit time stepping).
        assert sim.total_energy() == pytest.approx(e0, rel=0.03)
