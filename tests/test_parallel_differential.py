"""Differential tests for the latency-hiding communication layer.

The same convention PR 4 established for kernel backends, applied to
communication schedules: the optimized path (``comm="async"`` with
request batching, the persistent cell cache, and LET prefetch) must be
**bit-identical** to the kept blocking ABM reference — same
accelerations, same potentials, same interaction counts — across rank
counts and particle distributions.  Physics must never depend on how
the bytes moved.
"""

import numpy as np
import pytest

from repro.core import ParallelConfig, parallel_nbody_run, parallel_tree_accelerations


def uniform_cube(n, seed=11):
    rng = np.random.default_rng(seed)
    return rng.random((n, 3)), rng.random(n) / n


def clustered_sphere(n, seed=12):
    """Cosmology-style centrally-concentrated sphere — deep, uneven tree."""
    rng = np.random.default_rng(seed)
    r = rng.random(n) ** (2.0 / 3.0)
    d = rng.standard_normal((n, 3))
    d /= np.linalg.norm(d, axis=1, keepdims=True)
    return r[:, None] * d, np.full(n, 1.0 / n)


DISTRIBUTIONS = {"uniform": uniform_cube, "clustered": clustered_sphere}


def _run(pos, m, ranks, **cfg):
    res = parallel_tree_accelerations(
        pos, m, n_ranks=ranks, config=ParallelConfig(theta=0.7, eps=0.02, **cfg)
    )
    return res


class TestAsyncVsBlockingBitIdentity:
    @pytest.mark.parametrize("ranks", [2, 4, 7])
    @pytest.mark.parametrize("dist", sorted(DISTRIBUTIONS))
    def test_accelerations_counts_identical(self, ranks, dist):
        pos, m = DISTRIBUTIONS[dist](700)
        a = _run(pos, m, ranks, comm="async")
        b = _run(pos, m, ranks, comm="blocking")
        assert np.array_equal(a.accelerations, b.accelerations)
        assert np.array_equal(a.potentials, b.potentials)
        assert (a.counts.p2p, a.counts.p2c, a.counts.groups) == (
            b.counts.p2p, b.counts.p2c, b.counts.groups)

    def test_prefetch_off_still_identical(self):
        pos, m = clustered_sphere(600)
        a = _run(pos, m, 4, comm="async", prefetch=False)
        b = _run(pos, m, 4, comm="blocking")
        assert np.array_equal(a.accelerations, b.accelerations)

    def test_tight_cache_capacity_still_identical(self):
        # A small cache forces evictions and re-fetches; results must
        # not change, only the amount of traffic.
        pos, m = clustered_sphere(600)
        tight = _run(pos, m, 4, comm="async", cache_capacity=64, max_rounds=2000)
        roomy = _run(pos, m, 4, comm="async")
        assert np.array_equal(tight.accelerations, roomy.accelerations)
        assert tight.comm["requests"] >= roomy.comm["requests"]

    def test_async_batches_fewer_requests(self):
        # Deduplicated per-owner batching + prefetch must not send more
        # request items than the blocking path's per-walk requests.
        pos, m = clustered_sphere(800)
        a = _run(pos, m, 4, comm="async")
        b = _run(pos, m, 4, comm="blocking")
        assert a.comm["requests"] <= b.comm["requests"]

    def test_matches_single_rank_at_mac_error_scale(self):
        # Different rank counts group sinks differently, so agreement
        # is at the MAC-error scale, not bitwise.
        pos, m = uniform_cube(500)
        one = _run(pos, m, 1, comm="async")
        four = _run(pos, m, 4, comm="async")
        err = np.linalg.norm(one.accelerations - four.accelerations, axis=1)
        scale = np.linalg.norm(one.accelerations, axis=1)
        assert np.median(err / scale) < 2e-3


class TestBatchedVsPergroupEval:
    """The CSR-pooled evaluator vs the kept per-group reference.

    Batching reorders nothing physical — same interaction counts, same
    virtual time — but it fuses per-group kernel calls into one call
    per ready-batch, so float sums associate differently.  Documented
    tolerance: ~1e-12 relative (fixed seeds); counts and the virtual
    clock must still match exactly, and the multiprocess backend on the
    batched path must be bit-identical to serial batched.
    """

    @pytest.mark.parametrize("ranks", [2, 4, 7])
    @pytest.mark.parametrize("dist", sorted(DISTRIBUTIONS))
    def test_batched_matches_pergroup_reference(self, ranks, dist):
        pos, m = DISTRIBUTIONS[dist](700)
        bat = _run(pos, m, ranks, eval="batched")
        ref = _run(pos, m, ranks, eval="pergroup")
        assert (bat.counts.p2p, bat.counts.p2c, bat.counts.groups) == (
            ref.counts.p2p, ref.counts.p2c, ref.counts.groups)
        assert bat.sim.elapsed == ref.sim.elapsed
        assert np.allclose(bat.accelerations, ref.accelerations,
                           rtol=1e-11, atol=1e-14)
        assert np.allclose(bat.potentials, ref.potentials,
                           rtol=1e-12, atol=0.0)

    @pytest.mark.parametrize("ranks", [2, 4])
    def test_multiprocess_batched_bit_identical_to_serial(self, ranks):
        from repro.core.procpool import MultiprocessBackend

        pos, m = clustered_sphere(600)
        serial = _run(pos, m, ranks, eval="batched", backend="numpy")
        mp = MultiprocessBackend(workers=2, min_pairs=0)
        try:
            sharded = _run(pos, m, ranks, eval="batched", backend=mp)
        finally:
            mp.close()
        assert np.array_equal(sharded.accelerations, serial.accelerations)
        assert np.array_equal(sharded.potentials, serial.potentials)
        assert (sharded.counts.p2p, sharded.counts.p2c) == (
            serial.counts.p2p, serial.counts.p2c)

    def test_multistep_run_batched_vs_pergroup(self):
        pos, m = clustered_sphere(400, seed=41)
        kwargs = dict(n_ranks=4, n_steps=2, dt=1e-3)
        bat = parallel_nbody_run(
            pos, m, config=ParallelConfig(theta=0.7, eps=0.02, eval="batched"),
            **kwargs)
        ref = parallel_nbody_run(
            pos, m, config=ParallelConfig(theta=0.7, eps=0.02, eval="pergroup"),
            **kwargs)
        assert np.allclose(bat.positions, ref.positions, rtol=1e-10, atol=1e-13)
        assert np.allclose(bat.velocities, ref.velocities, rtol=1e-10, atol=1e-13)
        assert bat.sim.elapsed == ref.sim.elapsed


class TestCrossTimestepConsistency:
    """A warm cross-step cache must be invisible in the physics."""

    @pytest.mark.parametrize("ranks", [2, 4])
    def test_two_step_run_warm_equals_cold(self, ranks):
        pos, m = clustered_sphere(500, seed=21)
        kwargs = dict(n_ranks=ranks, n_steps=2, dt=5e-3,
                      config=ParallelConfig(theta=0.7, eps=0.02))
        warm = parallel_nbody_run(pos, m, cache_across_steps=True, **kwargs)
        cold = parallel_nbody_run(pos, m, cache_across_steps=False, **kwargs)
        for s in range(2):
            assert np.array_equal(
                warm.step_accelerations[s], cold.step_accelerations[s]), (
                f"step {s} drifted with ranks={ranks}")
        assert np.array_equal(warm.positions, cold.positions)
        assert np.array_equal(warm.velocities, cold.velocities)

    @pytest.mark.parametrize("ranks", [2, 4])
    def test_static_system_reuses_cache(self, ranks):
        # dt=0 with rebalancing off: nothing moves, every fingerprint
        # is stable, so step 2 must hit the cache instead of the wire —
        # and still produce the bit-identical forces.
        pos, m = clustered_sphere(500, seed=22)
        kwargs = dict(n_ranks=ranks, n_steps=2, dt=0.0, rebalance=False,
                      config=ParallelConfig(theta=0.7, eps=0.02))
        warm = parallel_nbody_run(pos, m, cache_across_steps=True, **kwargs)
        cold = parallel_nbody_run(pos, m, cache_across_steps=False, **kwargs)
        assert np.array_equal(warm.step_accelerations[0], warm.step_accelerations[1])
        assert np.array_equal(warm.step_accelerations[1], cold.step_accelerations[1])
        assert warm.comm["cache_invalidated"] == 0
        assert warm.comm["requests"] < cold.comm["requests"]

    def test_moving_system_invalidates_cache(self):
        pos, m = clustered_sphere(500, seed=23)
        warm = parallel_nbody_run(
            pos, m, n_ranks=4, n_steps=2, dt=1e-2,
            config=ParallelConfig(theta=0.7, eps=0.02))
        assert warm.comm["cache_invalidated"] > 0


class TestMultiStepDriver:
    def test_single_step_matches_one_shot_force(self):
        pos, m = uniform_cube(400, seed=31)
        cfg = ParallelConfig(theta=0.7, eps=0.02)
        run1 = parallel_nbody_run(pos, m, n_ranks=3, n_steps=1, dt=1e-3, config=cfg)
        one = parallel_tree_accelerations(pos, m, n_ranks=3, config=cfg)
        # Same tree parameters, same MAC: forces agree to rounding
        # (the driver's padded fixed box shifts the key grid, so cell
        # membership — hence bitwise forces — can differ slightly).
        err = np.linalg.norm(run1.accelerations - one.accelerations, axis=1)
        scale = np.linalg.norm(one.accelerations, axis=1)
        assert np.median(err / scale) < 5e-3

    def test_rebalancing_improves_measured_balance(self):
        # Clustered particles + block scatter start badly unbalanced;
        # feeding measured interaction work back into the splitters must
        # bring max/mean down versus the frozen decomposition.
        pos, m = clustered_sphere(1200, seed=32)
        kwargs = dict(n_ranks=6, n_steps=3, dt=1e-4,
                      config=ParallelConfig(theta=0.7, eps=0.02))
        frozen = parallel_nbody_run(pos, m, rebalance=False, **kwargs)
        tuned = parallel_nbody_run(pos, m, rebalance=True, **kwargs)
        assert tuned.work_imbalance[-1] < frozen.work_imbalance[-1]
        assert tuned.work_imbalance[-1] < tuned.work_imbalance[0] + 1e-12

    def test_deterministic_repeat(self):
        pos, m = clustered_sphere(400, seed=33)
        kwargs = dict(n_ranks=4, n_steps=3, dt=1e-3)
        r1 = parallel_nbody_run(pos, m, **kwargs)
        r2 = parallel_nbody_run(pos, m, **kwargs)
        assert np.array_equal(r1.positions, r2.positions)
        assert np.array_equal(r1.velocities, r2.velocities)
        assert r1.sim.elapsed == r2.sim.elapsed

    def test_momentum_roughly_conserved(self):
        pos, m = uniform_cube(500, seed=34)
        res = parallel_nbody_run(pos, m, n_ranks=4, n_steps=4, dt=1e-3)
        p0 = np.zeros(3)
        p1 = (m[:, None] * res.velocities).sum(axis=0)
        # Interaction forces are not exactly pairwise-antisymmetric
        # under the MAC, so momentum drifts at the MAC-error scale.
        assert np.linalg.norm(p1 - p0) < 1e-3

    def test_input_validation(self):
        pos, m = uniform_cube(50)
        with pytest.raises(ValueError):
            parallel_nbody_run(pos, m, n_ranks=2, n_steps=0, dt=1e-3)
        with pytest.raises(ValueError):
            parallel_nbody_run(pos, m, velocities=np.zeros((3, 3)),
                               n_ranks=2, n_steps=1, dt=1e-3)
