"""Tests for the NPB mini-kernels: real numerics, verified."""

import numpy as np
import pytest

from repro.nas import (
    adi_step_pentadiagonal,
    adi_step_tridiagonal,
    cg_solve,
    make_matrix,
    problem,
    rank_keys,
    run_bt,
    run_cg,
    run_ep,
    run_ft,
    run_is,
    run_lu,
    run_mg,
    run_sp,
    ssor_solve,
    total_ops,
)
from repro.nas.mg import laplacian_periodic, prolongate, restrict_full_weighting


class TestClasses:
    def test_known_sizes(self):
        assert problem("CG", "A").size == (14000, 11, 20.0)
        assert problem("MG", "C").size == (512,)
        assert problem("FT", "D").size == (2048, 1024, 1024)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            problem("XX", "A")
        with pytest.raises(ValueError):
            problem("CG", "Z")

    def test_ops_grow_with_class(self):
        for bench in ("BT", "SP", "LU", "MG", "CG", "FT", "IS"):
            ops = [total_ops(problem(bench, k)) for k in ("S", "A", "C")]
            assert ops[0] < ops[1] < ops[2], bench

    def test_bt_class_a_matches_published_count(self):
        # NPB reference: BT.A ~ 168.3 Gop.
        assert total_ops(problem("BT", "A")) == pytest.approx(168.3e9, rel=0.01)


class TestCg:
    def test_cg_solver_reduces_residual(self):
        a = make_matrix(500, 7, 10.0)
        b = np.ones(500)
        x, rnorm = cg_solve(a, b, iters=25)
        assert rnorm < 1e-6 * np.linalg.norm(b)
        assert np.allclose(a @ x, b, atol=1e-5)

    def test_run_cg_class_s(self):
        r = run_cg("S")
        assert r.verified
        assert np.isfinite(r.zeta)
        # zeta = shift + 1/(x.z): above the diagonal shift (the matrix
        # exceeds shift*I) and of the same order.
        assert 10.0 < r.zeta < 100.0

    def test_matrix_is_symmetric(self):
        a = make_matrix(200, 5, 5.0)
        assert abs(a - a.T).max() < 1e-12

    def test_matrix_validation(self):
        with pytest.raises(ValueError):
            make_matrix(1, 5, 1.0)


class TestMg:
    def test_laplacian_of_constant_is_zero(self):
        u = np.full((8, 8, 8), 3.0)
        assert np.allclose(laplacian_periodic(u, 0.125), 0.0)

    def test_restrict_prolongate_shapes(self):
        r = np.random.default_rng(0).random((16, 16, 16))
        c = restrict_full_weighting(r)
        assert c.shape == (8, 8, 8)
        f = prolongate(c)
        assert f.shape == (16, 16, 16)

    def test_prolongate_injects_coarse_points(self):
        c = np.random.default_rng(1).random((4, 4, 4))
        f = prolongate(c)
        assert np.allclose(f[::2, ::2, ::2], c)

    def test_restrict_odd_grid_rejected(self):
        with pytest.raises(ValueError):
            restrict_full_weighting(np.zeros((7, 7, 7)))

    def test_run_mg_class_s_contracts(self):
        r = run_mg("S")
        assert r.verified
        # 4 V-cycles at <=0.35 contraction each: > 600x total reduction.
        assert r.rnorms[-1] < 2e-3 * r.rnorms[0]


class TestFt:
    def test_run_ft_class_s(self):
        r = run_ft("S")
        assert r.verified
        assert len(r.checksums) == 6

    def test_diffusion_damps(self):
        r = run_ft("S")
        assert r.norms[-1] < r.norms[0]


class TestIs:
    def test_rank_keys_sorts(self):
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 100, 1000)
        ranks = rank_keys(keys, 100)
        out = np.empty_like(keys)
        out[ranks] = keys
        assert np.all(np.diff(out) >= 0)

    def test_rank_keys_stable_permutation(self):
        keys = np.array([5, 3, 5, 3, 5])
        ranks = rank_keys(keys, 10)
        assert sorted(ranks.tolist()) == [0, 1, 2, 3, 4]
        # Stability: equal keys keep input order.
        assert ranks[0] < ranks[2] < ranks[4]
        assert ranks[1] < ranks[3]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            rank_keys(np.array([5]), 5)

    def test_run_is_class_s(self):
        assert run_is("S").verified


class TestEp:
    def test_run_ep_statistics(self):
        r = run_ep("S")
        assert r.verified
        assert r.counts.sum() == r.accepted
        # Nearly all Gaussian maxima fall below 6 sigma.
        assert r.counts[:6].sum() > 0.999 * r.accepted


class TestAdiAndSsor:
    def test_bt_exact_decay(self):
        r = run_bt("S")
        assert r.verified
        assert r.amplitude_error < 1e-10

    def test_sp_fourth_order_decay(self):
        r = run_sp("S")
        assert r.verified

    def test_adi_step_preserves_zero(self):
        u = np.zeros((8, 8, 8))
        assert np.allclose(adi_step_tridiagonal(u, 0.3), 0.0)
        assert np.allclose(adi_step_pentadiagonal(u, 0.3), 0.0)

    def test_adi_damps_any_field(self):
        rng = np.random.default_rng(3)
        u = rng.random((10, 10, 10))
        v = adi_step_tridiagonal(u, 0.5)
        assert np.linalg.norm(v) < np.linalg.norm(u)

    def test_lu_ssor_matches_direct(self):
        r = run_lu("S")
        assert r.verified
        assert r.direct_error < 1e-6

    def test_ssor_validation(self):
        with pytest.raises(ValueError):
            ssor_solve(np.zeros((4, 4, 4)), 0.1, omega=2.5)
