"""Property-based stress tests for the SimMPI engine.

Hypothesis generates random-but-matched communication structures; the
engine must route every payload correctly, never deadlock, and keep
virtual time consistent — across payload sizes straddling the eager
threshold, wildcard receives, and mixed blocking/nonblocking traffic.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmpi import ANY_SOURCE, UniformCost, run

# Monte-Carlo stress tier: excluded from `pytest -m "not slow"` runs.
pytestmark = pytest.mark.slow


class TestRandomMatchedTraffic:
    @given(
        st.integers(2, 6),
        st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), min_size=1, max_size=20),
        st.integers(0, 10**6),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_send_matrix_delivered(self, size, raw_edges, seed):
        """Any multiset of (src, dst) messages with matching receives
        completes, and every payload reaches its addressee."""
        edges = [(s % size, d % size) for s, d in raw_edges]
        outgoing = {r: [d for s, d in edges if s == r] for r in range(size)}
        incoming_count = {r: sum(1 for _, d in edges if d == r) for r in range(size)}

        def prog(comm):
            me = comm.rank
            reqs = []
            for i, dest in enumerate(outgoing[me]):
                reqs.append((yield comm.isend((me, i), dest=dest, tag=7)))
            got = []
            for _ in range(incoming_count[me]):
                got.append((yield comm.recv(source=ANY_SOURCE, tag=7)))
            if reqs:
                yield comm.waitall(reqs)
            yield comm.barrier()
            return sorted(got)

        result = run(prog, size)
        delivered = [m for r in result.returns for m in r]
        expected = sorted(
            (s, i)
            for r in range(size)
            for i, (s2, _) in enumerate([(r, d) for d in outgoing[r]])
            for s in [r]
        )
        assert sorted(delivered) == expected

    @given(st.integers(2, 5), st.integers(0, 3), st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_eager_boundary_sizes(self, size, exponent, seed):
        """Payloads straddling the 64 KiB eager threshold all route."""
        nbytes = 64 * 1024 + (exponent - 1) * 1024  # 63, 64, 65, 66 KiB
        payload = np.zeros(nbytes // 8)

        def prog(comm):
            right = (comm.rank + 1) % comm.size
            req = yield comm.isend(payload, dest=right, tag=1)
            data = yield comm.recv(source=(comm.rank - 1) % comm.size, tag=1)
            yield comm.wait(req)
            return data.size

        result = run(prog, size, UniformCost())
        assert result.returns == [payload.size] * size

    @given(st.permutations(list(range(5))), st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_permutation_routing(self, targets, salt):
        """Every rank sends to a permutation target; all arrive."""
        size = len(targets)

        def prog(comm):
            yield comm.isend(comm.rank * 1000 + salt, dest=targets[comm.rank], tag=3)
            data = yield comm.recv(tag=3)
            return data

        result = run(prog, size)
        for dest, got in enumerate(result.returns):
            src = targets.index(dest)
            assert got == src * 1000 + salt

    @given(st.integers(2, 6), st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_collective_storm(self, size, rounds):
        """Repeated mixed collectives stay matched and correct."""

        def prog(comm):
            acc = 0
            for r in range(rounds):
                acc += yield comm.allreduce(comm.rank + r)
                blocks = yield comm.allgather(comm.rank)
                assert blocks == list(range(comm.size))
                yield comm.barrier()
            return acc

        expected_per_round = lambda r: sum(range(size)) + size * r
        expected = sum(expected_per_round(r) for r in range(rounds))
        assert run(prog, size).returns == [expected] * size

    @given(st.integers(2, 5), st.floats(1e-6, 1e-2), st.floats(1.0, 1000.0))
    @settings(max_examples=20, deadline=None)
    def test_clocks_nonnegative_and_bounded(self, size, latency, mbytes):
        """Virtual clocks are monotone, finite, and ordering-consistent
        under arbitrary cost parameters."""
        cost = UniformCost(latency_s=latency, mbytes_s=mbytes)

        def prog(comm):
            yield comm.compute(flops=1e6)
            total = yield comm.allreduce(1)
            return total

        result = run(prog, size, cost)
        assert all(np.isfinite(c) and c >= 0 for c in result.clocks)
        assert result.returns == [size] * size
        assert result.elapsed >= max(s.compute_s for s in result.stats) - 1e-12
