"""Unit tests for the repro.obs instrumentation layer."""

import json

import pytest

from repro.obs import (
    DEFAULT_SYMBOLS,
    NULL,
    Counter,
    Gauge,
    NullRecorder,
    Recorder,
    Span,
    chrome_trace,
    dumps_canonical,
    metrics,
    parse_chrome_trace,
    render_spans,
    validate_nesting,
)


class TestSpan:
    def test_fields_and_duration(self):
        s = Span("work", 1.0, 3.5, track=2, cat="compute", args=(("n", 4),))
        assert s.duration == 2.5
        assert s.args_dict == {"n": 4}

    def test_rejects_backwards_interval(self):
        with pytest.raises(ValueError):
            Span("bad", 2.0, 1.0)

    def test_zero_width_ok_and_hashable(self):
        s = Span("crash", 1.0, 1.0, cat="failed")
        assert s.duration == 0.0
        assert len({s, Span("crash", 1.0, 1.0, cat="failed")}) == 1


class TestCounterGauge:
    def test_counter_monotone(self):
        c = Counter("bytes")
        c.add(10)
        c.add(0)
        assert c.value == 10
        with pytest.raises(ValueError):
            c.add(-1)

    def test_gauge_envelope(self):
        g = Gauge("depth")
        for v in (3.0, 1.0, 7.0):
            g.set(v)
        assert (g.value, g.lo, g.hi, g.samples) == (7.0, 1.0, 7.0, 3)


class TestRecorder:
    def test_explicit_spans_virtual_time(self):
        rec = Recorder()
        rec.add_span("compute", 0.0, 1.0, track=3, cat="compute")
        rec.add_span("blocked", 1.0, 1.5, track=3, cat="blocked")
        assert [s.name for s in rec.spans] == ["compute", "blocked"]
        assert rec.spans[0].track == 3

    def test_context_manager_nests(self):
        t = iter([0.0, 1.0, 2.0, 3.0, 4.0]).__next__
        rec = Recorder(clock=lambda: 0.0)
        rec._clock = t
        rec._origin = 0.0
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        inner, outer = rec.spans
        assert inner.name == "inner" and outer.name == "outer"
        assert outer.t_start <= inner.t_start <= inner.t_end <= outer.t_end
        validate_nesting(rec.spans)

    def test_out_of_order_close_raises(self):
        rec = Recorder()
        a = rec.span("a")
        b = rec.span("b")
        a.__enter__()
        b.__enter__()
        with pytest.raises(RuntimeError):
            a.__exit__(None, None, None)

    def test_counters_and_gauges(self):
        rec = Recorder()
        rec.count("ops")
        rec.count("ops", 4)
        rec.gauge("depth", 2.0)
        assert rec.counters["ops"].value == 5
        assert rec.gauges["depth"].value == 2.0

    def test_span_args_frozen_sorted(self):
        rec = Recorder()
        rec.add_span("s", 0, 1, args={"b": 2, "a": 1})
        assert rec.spans[0].args == (("a", 1), ("b", 2))


class TestNullRecorder:
    def test_everything_is_a_noop(self):
        n = NullRecorder()
        assert not n.enabled
        with n.span("x", track=1, cat="compute", n=3):
            n.count("c", 5)
            n.gauge("g", 1.0)
            n.add_span("y", 0, 1)
        assert n.spans == ()
        assert n.counters == {} and n.gauges == {}
        assert n.counter("c").value == 0.0
        assert n.now() == 0.0

    def test_shared_singleton(self):
        assert isinstance(NULL, NullRecorder)
        assert NULL.span("a") is NULL.span("b")
        assert NULL.counter("a") is NULL.counter("b")


class TestValidateNesting:
    def test_accepts_forest(self):
        validate_nesting([
            Span("p", 0.0, 4.0), Span("c1", 0.5, 1.5), Span("c2", 2.0, 3.0),
            Span("other-track", 1.0, 9.0, track=1),
        ])

    def test_rejects_partial_overlap(self):
        with pytest.raises(ValueError, match="partially overlaps"):
            validate_nesting([Span("a", 0.0, 2.0), Span("b", 1.0, 3.0)])

    def test_different_tracks_may_overlap(self):
        validate_nesting([Span("a", 0.0, 2.0), Span("b", 1.0, 3.0, track=1)])


class TestChromeTrace:
    def _rec(self):
        rec = Recorder()
        rec.add_span("compute", 0.0, 1.25, track=0, cat="compute", args={"n": 7})
        rec.add_span("recv", 1.25, 2.0, track=1, cat="blocked")
        rec.count("bytes", 4096)
        return rec

    def test_document_shape(self):
        doc = chrome_trace(self._rec(), process_name="unit")
        evs = doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"
        assert [e["ph"] for e in evs] == ["M", "M", "M", "X", "X", "C"]
        meta = evs[0]
        assert meta["args"]["name"] == "unit"
        x = [e for e in evs if e["ph"] == "X"]
        assert x[0]["ts"] == 0.0 and x[0]["dur"] == 1.25e6
        assert x[0]["tid"] == 0 and x[1]["tid"] == 1
        assert x[0]["args"]["n"] == 7
        assert json.loads(json.dumps(doc)) == doc  # JSON-serializable

    def test_track_names(self):
        doc = chrome_trace(self._rec(), track_names={0: "boss"})
        names = [e["args"]["name"] for e in doc["traceEvents"] if e["name"] == "thread_name"]
        assert names == ["boss", "rank 1"]

    def test_round_trip_exact(self):
        rec = self._rec()
        spans = parse_chrome_trace(chrome_trace(rec))
        assert sorted(spans, key=lambda s: s.t_start) == sorted(
            rec.spans, key=lambda s: s.t_start
        )

    def test_parse_survives_args_stripped(self):
        # A trace round-tripped through a µs-only consumer still parses.
        doc = chrome_trace(self._rec())
        for ev in doc["traceEvents"]:
            if ev["ph"] == "X":
                ev["args"] = {}
        spans = parse_chrome_trace(doc)
        assert spans[0].t_end == pytest.approx(1.25, abs=1e-9)

    def test_plain_span_iterable_source(self):
        doc = chrome_trace([Span("s", 0.0, 1.0)])
        assert sum(e["ph"] == "X" for e in doc["traceEvents"]) == 1
        assert not any(e["ph"] == "C" for e in doc["traceEvents"])


class TestMetrics:
    def test_flat_keys(self):
        rec = Recorder()
        rec.add_span("load", 0.0, 1.0)
        rec.add_span("load", 2.0, 2.5)
        rec.count("ops", 10)
        rec.gauge("depth", 3.0)
        m = metrics(rec)
        assert m["span.load.count"] == 2
        assert m["span.load.total_s"] == pytest.approx(1.5)
        assert m["counter.ops"] == 10
        assert m["gauge.depth"] == 3.0
        assert m["gauge.depth.min"] == 3.0 and m["gauge.depth.max"] == 3.0


class TestCanonicalDumps:
    def test_byte_stable(self):
        a = dumps_canonical({"x": 0.1 + 0.2, "y": [1, 2.0]})
        b = dumps_canonical({"y": [1, 2.0], "x": 0.3})
        assert a == b
        assert a.endswith("\n")

    def test_ints_and_bools_untouched(self):
        assert dumps_canonical({"i": 3, "b": True, "n": None}) == (
            '{"b":true,"i":3,"n":null}\n'
        )

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            dumps_canonical({"x": float("nan")})


class TestRenderSpans:
    def test_basic_rendering(self):
        spans = [
            Span("compute", 0.0, 0.5, track=0, cat="compute"),
            Span("recv", 0.5, 1.0, track=0, cat="blocked"),
            Span("compute", 0.0, 1.0, track=1, cat="compute"),
        ]
        out = render_spans(spans, 1.0, n_tracks=2, width=12)
        lines = out.splitlines()
        assert "timeline" in lines[0]
        assert lines[1].startswith("rank   0 |")
        assert "#" in lines[1] and "." in lines[1]
        assert set(lines[2].split("|")[1]) == {"#"}

    def test_empty_and_validation(self):
        assert render_spans([], 1.0, n_tracks=1) == "(empty trace)"
        with pytest.raises(ValueError):
            render_spans([Span("s", 0, 1)], 0.0, n_tracks=1)
        with pytest.raises(ValueError):
            render_spans([Span("s", 0, 1)], 1.0, n_tracks=1, width=5)

    def test_symbols_table(self):
        assert DEFAULT_SYMBOLS["compute"] == "#"
        assert DEFAULT_SYMBOLS["failed"] == "X"
