"""Tests for repro.core.hashtable: the key -> cell hash map."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import KeyHashTable


def _keys(values):
    return np.array(values, dtype=np.uint64)


def _vals(values):
    return np.array(values, dtype=np.int64)


class TestBasics:
    def test_insert_and_lookup(self):
        table = KeyHashTable()
        table.insert(_keys([1, 2, 3]), _vals([10, 20, 30]))
        values, found = table.lookup(_keys([2, 3, 1]))
        assert found.all()
        assert values.tolist() == [20, 30, 10]

    def test_miss_reported_not_raised(self):
        # A miss is the treecode's "non-local data" signal.
        table = KeyHashTable()
        table.insert(_keys([5]), _vals([1]))
        values, found = table.lookup(_keys([5, 6, 7]))
        assert found.tolist() == [True, False, False]

    def test_scalar_get(self):
        table = KeyHashTable()
        table.insert(_keys([42]), _vals([7]))
        assert table.get(42) == 7
        assert table.get(43) is None
        assert table.get(43, -1) == -1
        assert 42 in table
        assert 43 not in table

    def test_overwrite_semantics(self):
        table = KeyHashTable()
        table.insert(_keys([9]), _vals([1]))
        table.insert(_keys([9]), _vals([2]))
        assert table.get(9) == 2
        assert len(table) == 1

    def test_duplicate_keys_in_one_batch_last_wins(self):
        table = KeyHashTable()
        table.insert(_keys([4, 4, 4]), _vals([1, 2, 3]))
        assert table.get(4) == 3
        assert len(table) == 1

    def test_zero_key_reserved(self):
        table = KeyHashTable()
        with pytest.raises(ValueError):
            table.insert(_keys([0]), _vals([1]))

    def test_empty_batch(self):
        table = KeyHashTable()
        table.insert(_keys([]), _vals([]))
        values, found = table.lookup(_keys([]))
        assert values.size == 0 and found.size == 0

    def test_shape_mismatch(self):
        table = KeyHashTable()
        with pytest.raises(ValueError):
            table.insert(_keys([1, 2]), _vals([1]))

    def test_validation(self):
        with pytest.raises(ValueError):
            KeyHashTable(max_load=0.99)


class TestGrowthAndCollisions:
    def test_growth_preserves_entries(self):
        table = KeyHashTable(capacity=8)
        keys = np.arange(1, 2001, dtype=np.uint64)
        table.insert(keys, keys.astype(np.int64) * 3)
        assert len(table) == 2000
        assert table.capacity >= 2000 / table.max_load
        values, found = table.lookup(keys)
        assert found.all()
        assert np.array_equal(values, keys.astype(np.int64) * 3)

    def test_load_factor_bounded(self):
        table = KeyHashTable(capacity=8, max_load=0.5)
        table.insert(np.arange(1, 101, dtype=np.uint64), np.arange(100, dtype=np.int64))
        assert table.load_factor <= 0.5

    def test_adversarial_same_slot_keys(self):
        # Construct distinct keys that all hash to slot 0 of the
        # initial table, forcing long probe chains.
        table = KeyHashTable(capacity=64, max_load=0.9)
        universe = np.arange(1, 20000, dtype=np.uint64)
        slots = table._slots(universe)
        keys = universe[slots == 0][:40]
        assert keys.size >= 30  # the attack is real
        table.insert(keys, np.arange(keys.size, dtype=np.int64))
        values, found = table.lookup(keys)
        assert found.all()
        assert np.array_equal(values, np.arange(keys.size, dtype=np.int64))

    def test_realistic_morton_keys(self):
        rng = np.random.default_rng(11)
        from repro.core import keys_from_positions

        keys = keys_from_positions(rng.random((5000, 3)))
        keys = np.unique(keys)
        table = KeyHashTable()
        table.insert(keys, np.arange(keys.size, dtype=np.int64))
        values, found = table.lookup(keys)
        assert found.all()
        assert np.array_equal(values, np.arange(keys.size, dtype=np.int64))
        # Absent keys must all miss.
        absent = keys[: keys.size // 2] ^ np.uint64(1 << 62)
        absent = absent[~np.isin(absent, keys)]
        _, found = table.lookup(absent)
        assert not found.any()

    def test_keys_listing(self):
        table = KeyHashTable()
        table.insert(_keys([3, 1, 2]), _vals([0, 0, 0]))
        assert sorted(table.keys().tolist()) == [1, 2, 3]


class TestPropertyBased:
    @given(
        st.dictionaries(
            st.integers(min_value=1, max_value=2**63 - 1),
            st.integers(min_value=-(2**31), max_value=2**31),
            min_size=0,
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_behaves_like_dict(self, mapping):
        table = KeyHashTable(capacity=8)
        if mapping:
            table.insert(
                np.array(list(mapping.keys()), dtype=np.uint64),
                np.array(list(mapping.values()), dtype=np.int64),
            )
        assert len(table) == len(mapping)
        for k, v in mapping.items():
            assert table.get(k) == v
        probe = np.array([1, 7, 2**62, 2**63 - 1], dtype=np.uint64)
        values, found = table.lookup(probe)
        for key, val, hit in zip(probe.tolist(), values.tolist(), found.tolist()):
            assert hit == (key in mapping)
            if hit:
                assert val == mapping[key]

    @given(st.lists(st.integers(1, 10**6), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_insert_idempotent_under_reinsert(self, key_list):
        keys = np.array(key_list, dtype=np.uint64)
        vals = np.arange(keys.size, dtype=np.int64)
        table = KeyHashTable(capacity=8)
        table.insert(keys, vals)
        table.insert(keys, vals)  # reinsert everything
        assert len(table) == len(set(key_list))
