"""Differential determinism suite for the campaign engine.

The PR-5 convention (async comm must be bit-identical to blocking)
applied one layer up: a catalog run serially, on a 2-process pool, and
on a 4-process pool must produce **bit-identical result stores**.
Physics must never depend on which core computed it or in what order
shards completed.  The deterministic surface is ``results.jsonl``
(canonical lines, compared order-normalized per the store contract);
the operational surface (``shards.jsonl``) must agree on everything
but wall timings.
"""

import json

import pytest

from repro.campaign import (
    ClusterSpec,
    CosmologySpec,
    SupernovaSpec,
    run_campaign,
    sweep,
)


def sixteen_scenarios():
    """A 16-entry catalog across all three kinds, with duplicates.

    Entries 14 and 15 repeat earlier specs so every run also exercises
    the dedupe path (2 dedupe hits, 14 unique shards).
    """
    specs = [
        *sweep(ClusterSpec(work_hours=24.0), n_nodes=[32, 64, 128, 294, 512, 1024]),
        *sweep(CosmologySpec(n_side=4, a_final=0.15), seed=[1, 2, 3]),
        *sweep(CosmologySpec(n_side=4, a_final=0.12, omega_m=0.25, omega_l=0.75), seed=[1, 2]),
        SupernovaSpec(n_particles=40, n_steps=2),
        SupernovaSpec(n_particles=40, n_steps=2, omega0=0.6),
        SupernovaSpec(n_particles=48, n_steps=1),
        ClusterSpec(work_hours=24.0, n_nodes=294),   # dup of the sweep
        CosmologySpec(n_side=4, a_final=0.15, seed=2),  # dup of the sweep
    ]
    assert len(specs) == 16
    return specs


def normalized_results(store_dir) -> list[str]:
    """Order-normalized canonical result lines."""
    with open(store_dir / "results.jsonl") as fh:
        return sorted(line.rstrip("\n") for line in fh if line.strip())


def normalized_shards(store_dir) -> list[dict]:
    """Shard rows with the wall-clock fields stripped."""
    rows = []
    with open(store_dir / "shards.jsonl") as fh:
        for line in fh:
            row = json.loads(line)
            row.pop("seconds", None)
            rows.append(row)
    return sorted(rows, key=lambda r: r["index"])


class TestSerialVsPoolBitIdentity:
    @pytest.fixture(scope="class")
    def runs(self, tmp_path_factory):
        catalog = sixteen_scenarios()
        out = {}
        for label, workers in (("serial", 1), ("pool2", 2), ("pool4", 4)):
            root = tmp_path_factory.mktemp(f"campaign_{label}")
            out[label] = (root, run_campaign(catalog, str(root), workers=workers))
        return out

    @pytest.mark.parametrize("pooled", ["pool2", "pool4"])
    def test_result_store_bit_identical(self, runs, pooled):
        serial_root, _ = runs["serial"]
        pool_root, _ = runs[pooled]
        assert normalized_results(pool_root) == normalized_results(serial_root)

    def test_results_are_byte_identical_even_unsorted(self, runs):
        # Finalization writes catalog order, so the whole file — not
        # just its sorted lines — must match across pool sizes.
        blobs = {
            label: (root / "results.jsonl").read_bytes()
            for label, (root, _) in runs.items()
        }
        assert blobs["serial"] == blobs["pool2"] == blobs["pool4"]

    @pytest.mark.parametrize("pooled", ["pool2", "pool4"])
    def test_shard_statuses_identical(self, runs, pooled):
        serial_root, _ = runs["serial"]
        pool_root, _ = runs[pooled]
        assert normalized_shards(pool_root) == normalized_shards(serial_root)

    def test_reports_agree_on_everything_but_timing(self, runs):
        dicts = []
        for _, report in runs.values():
            d = report.to_dict()
            d.pop("seconds")
            d.pop("workers")
            d.pop("root")
            dicts.append(d)
        assert dicts[0] == dicts[1] == dicts[2]

    def test_dedupe_hits_reported(self, runs):
        _, report = runs["serial"]
        assert report.dedupe_hits == 2
        assert report.unique == 14
        assert report.computed == 14
        assert report.failed == 0

    def test_sixteen_shard_rows_and_fourteen_results(self, runs):
        root, _ = runs["serial"]
        assert len(normalized_shards(root)) == 16
        assert len(normalized_results(root)) == 14


class TestWorkerResolution:
    def test_env_var_drives_pool_size(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CAMPAIGN_WORKERS", "2")
        report = run_campaign(
            sweep(ClusterSpec(), n_nodes=[16, 32, 48]), str(tmp_path / "c"),
        )
        assert report.workers == 2
        assert report.computed == 3

    def test_kwarg_overrides_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CAMPAIGN_WORKERS", "8")
        report = run_campaign(
            [ClusterSpec(n_nodes=16)], str(tmp_path / "c"), workers=1,
        )
        assert report.workers == 1

    def test_bad_env_rejected(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CAMPAIGN_WORKERS", "many")
        with pytest.raises(ValueError, match="REPRO_CAMPAIGN_WORKERS"):
            run_campaign([ClusterSpec()], str(tmp_path / "c"))


class TestPooledRunMatchesCachedRerun:
    def test_second_run_all_cache_hits_and_identical_store(self, tmp_path):
        catalog = list(sweep(ClusterSpec(), n_nodes=[8, 16, 24, 8]))
        root = tmp_path / "c"
        first = run_campaign(catalog, str(root), workers=2)
        blob = (root / "results.jsonl").read_bytes()
        second = run_campaign(catalog, str(root), workers=1)
        assert first.computed == 3 and first.dedupe_hits == 1
        assert second.computed == 0
        assert second.cache_hits == 3
        assert second.hit_rate == 1.0
        assert (root / "results.jsonl").read_bytes() == blob
