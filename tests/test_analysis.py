"""Tests for repro.analysis: table rendering and experiment registry."""

import re

import pytest

from repro.analysis import EXPERIMENTS, by_id, comparison_rows, format_comparison, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 4.0]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_title_prepended(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        out = format_table(["v"], [[1234567.0], [0.000123], [3.14159]])
        assert "1.235e+06" in out
        assert "0.000123" in out
        assert "3.142" in out

    def test_zero_and_strings(self):
        out = format_table(["v"], [[0.0], ["label"]])
        assert "0" in out and "label" in out


class TestComparison:
    def test_rows_and_ratio(self):
        rows = comparison_rows(["x"], [10.0], [12.0])
        assert rows == [["x", 10.0, 12.0, 1.2]]

    def test_zero_paper_value(self):
        rows = comparison_rows(["x"], [0.0], [1.0])
        assert rows[0][3] == float("inf")

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            comparison_rows(["x"], [1.0], [1.0, 2.0])

    def test_format_comparison_headers(self):
        out = format_comparison(["x"], [1.0], [1.1], value_name="Gflops")
        assert "paper Gflops" in out
        assert "ours/paper" in out


class TestExperimentRegistry:
    def test_every_paper_artifact_covered(self):
        artifacts = {e.artifact.split(" /")[0] for e in EXPERIMENTS}
        # Tables 1-7 (no computational content in Fig 1, a photograph).
        for t in ("Table 1", "Table 2", "Table 3", "Table 4", "Table 5", "Table 6", "Table 7"):
            assert any(t in a for a in artifacts), t
        for f in ("Figure 2", "Figure 3", "Figure 4", "Figure 5", "Figure 6", "Figure 7", "Figure 8"):
            assert any(f in a for a in artifacts), f

    def test_every_bench_file_exists(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[1]
        for e in EXPERIMENTS:
            assert (root / e.bench).exists(), e.bench

    def test_every_module_importable(self):
        import importlib

        for e in EXPERIMENTS:
            for mod in e.modules:
                importlib.import_module(mod)

    def test_ids_unique(self):
        ids = [e.id for e in EXPERIMENTS]
        assert len(ids) == len(set(ids))

    def test_by_id(self):
        assert by_id("T2").artifact == "Table 2"
        with pytest.raises(KeyError):
            by_id("T99")

    def test_id_naming_convention(self):
        for e in EXPERIMENTS:
            assert re.fullmatch(r"[TFS]\d+", e.id), e.id
