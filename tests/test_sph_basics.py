"""Tests for SPH kernels, neighbors, density, and EOS."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_tree
from repro.sph import (
    SUPPORT_RADIUS,
    HybridCollapseEOS,
    IdealGas,
    Polytrope,
    adapt_smoothing,
    density_sum,
    dw_dr_cubic,
    find_neighbors,
    flux_limiter,
    initial_smoothing,
    kernel_self_value,
    w_cubic,
)


class TestKernel:
    def test_normalization(self):
        # Integral of W over all space = 1 (radial quadrature).
        h = 1.0
        r = np.linspace(0, SUPPORT_RADIUS * h, 20001)
        w = w_cubic(r, h)
        integral = np.trapezoid(4 * np.pi * r**2 * w, r)
        assert integral == pytest.approx(1.0, rel=1e-5)

    def test_compact_support(self):
        assert w_cubic(np.array([2.0, 2.5, 100.0]), 1.0).tolist() == [0.0, 0.0, 0.0]
        assert dw_dr_cubic(np.array([2.0, 3.0]), 1.0).tolist() == [0.0, 0.0]

    def test_self_value(self):
        assert kernel_self_value(1.0) == pytest.approx(w_cubic(np.array([0.0]), 1.0)[0])
        assert kernel_self_value(2.0) == pytest.approx(kernel_self_value(1.0) / 8.0)

    def test_monotone_decreasing(self):
        r = np.linspace(0, 2, 400)
        w = w_cubic(r, 1.0)
        assert np.all(np.diff(w) <= 1e-15)

    def test_gradient_nonpositive(self):
        r = np.linspace(1e-6, 2.5, 500)
        assert np.all(dw_dr_cubic(r, 1.0) <= 0.0)

    def test_gradient_matches_finite_difference(self):
        r = np.linspace(0.05, 1.95, 200)
        eps = 1e-7
        fd = (w_cubic(r + eps, 1.0) - w_cubic(r - eps, 1.0)) / (2 * eps)
        assert np.allclose(dw_dr_cubic(r, 1.0), fd, atol=1e-5)

    def test_h_scaling(self):
        # W(r, h) = W(r/h, 1) / h^3.
        r = np.linspace(0, 3, 50)
        assert np.allclose(w_cubic(r, 2.0), w_cubic(r / 2.0, 1.0) / 8.0)

    def test_invalid_h(self):
        with pytest.raises(ValueError):
            w_cubic(np.array([1.0]), 0.0)

    @given(st.floats(0.01, 5.0), st.floats(0.1, 3.0))
    @settings(max_examples=100, deadline=None)
    def test_property_nonnegative(self, r, h):
        assert float(w_cubic(np.array([r]), h)[0]) >= 0.0


class TestNeighbors:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(0)
        pos = rng.random((150, 3))
        tree = build_tree(pos, np.ones(150), bucket_size=8)
        radii = np.full(150, 0.25)
        lists = find_neighbors(tree, radii)
        d2 = ((tree.positions[:, None, :] - tree.positions[None, :, :]) ** 2).sum(-1)
        for i in range(150):
            expected = set(np.flatnonzero(d2[i] <= 0.25**2).tolist())
            assert set(lists.of(i).tolist()) == expected, i

    def test_includes_self(self):
        rng = np.random.default_rng(1)
        pos = rng.random((60, 3))
        tree = build_tree(pos, np.ones(60), bucket_size=4)
        lists = find_neighbors(tree, np.full(60, 0.1))
        for i in range(60):
            assert i in lists.of(i)

    def test_per_particle_radii(self):
        rng = np.random.default_rng(2)
        pos = rng.random((100, 3))
        tree = build_tree(pos, np.ones(100), bucket_size=8)
        radii = rng.random(100) * 0.2 + 0.05
        lists = find_neighbors(tree, radii)
        d2 = ((tree.positions[:, None, :] - tree.positions[None, :, :]) ** 2).sum(-1)
        for i in range(0, 100, 7):
            expected = set(np.flatnonzero(d2[i] <= radii[i] ** 2).tolist())
            assert set(lists.of(i).tolist()) == expected

    def test_validation(self):
        rng = np.random.default_rng(3)
        tree = build_tree(rng.random((10, 3)), np.ones(10))
        with pytest.raises(ValueError):
            find_neighbors(tree, np.full(5, 0.1))
        with pytest.raises(ValueError):
            find_neighbors(tree, np.zeros(10))


class TestDensity:
    def test_uniform_lattice_density(self):
        # A periodic-ish uniform lattice should give rho ~ n m in the
        # interior.
        n_side = 8
        g = (np.arange(n_side) + 0.5) / n_side
        pos = np.stack(np.meshgrid(g, g, g), axis=-1).reshape(-1, 3)
        m = np.full(pos.shape[0], 1.0 / pos.shape[0])
        tree, result = adapt_smoothing(pos, m, n_target=40)
        # Expected density: total mass / unit volume = 1.
        interior = np.all((tree.positions > 0.25) & (tree.positions < 0.75), axis=1)
        assert np.median(result.rho[interior]) == pytest.approx(1.0, rel=0.05)

    def test_neighbor_count_near_target(self):
        rng = np.random.default_rng(4)
        pos = rng.random((500, 3))
        m = np.ones(500)
        _, result = adapt_smoothing(pos, m, n_target=40)
        counts = result.neighbors.counts()
        assert 25 < np.median(counts) < 60

    def test_density_positive_everywhere(self):
        rng = np.random.default_rng(5)
        pos = rng.standard_normal((300, 3))
        m = np.ones(300)
        _, result = adapt_smoothing(pos, m)
        assert np.all(result.rho > 0)

    def test_density_scales_with_mass(self):
        rng = np.random.default_rng(6)
        pos = rng.random((200, 3))
        tree1, r1 = adapt_smoothing(pos, np.ones(200))
        tree2, r2 = adapt_smoothing(pos, 3.0 * np.ones(200), h=r1.h[np.argsort(tree1.order)])
        # Same positions, same smoothing: rho scales linearly in m.
        assert np.allclose(r2.rho, 3.0 * r1.rho, rtol=1e-10)

    def test_initial_smoothing_positive(self):
        rng = np.random.default_rng(7)
        h = initial_smoothing(rng.random((100, 3)))
        assert np.all(h > 0)

    def test_validation(self):
        rng = np.random.default_rng(8)
        pos = rng.random((10, 3))
        with pytest.raises(ValueError):
            adapt_smoothing(pos, np.ones(10), n_target=0)
        with pytest.raises(ValueError):
            adapt_smoothing(pos, np.ones(10), h=np.zeros(10))


class TestEos:
    def test_ideal_gas(self):
        gas = IdealGas(gamma=5.0 / 3.0)
        assert gas.pressure(np.array([2.0]), np.array([3.0]))[0] == pytest.approx(4.0)
        assert gas.sound_speed(np.array([1.0]), np.array([1.0]))[0] == pytest.approx(
            np.sqrt(5.0 / 3.0 * 2.0 / 3.0)
        )

    def test_polytrope(self):
        poly = Polytrope(k=2.0, gamma=2.0)
        assert poly.pressure(np.array([3.0]))[0] == pytest.approx(18.0)

    def test_hybrid_continuity_at_nuclear_density(self):
        eos = HybridCollapseEOS(k1=1.0, rho_nuc=10.0)
        below = eos.cold_pressure(np.array([10.0 - 1e-9]))[0]
        above = eos.cold_pressure(np.array([10.0 + 1e-9]))[0]
        assert below == pytest.approx(above, rel=1e-6)

    def test_hybrid_stiffens_above_nuclear(self):
        eos = HybridCollapseEOS(k1=1.0, gamma1=4.0 / 3.0, gamma2=3.0, rho_nuc=10.0)
        # Effective gamma = dlnP/dlnrho jumps above rho_nuc.
        rho = np.array([5.0, 20.0])
        p = eos.cold_pressure(rho)
        g_below = np.log(eos.cold_pressure(np.array([5.05]))[0] / p[0]) / np.log(5.05 / 5.0)
        g_above = np.log(eos.cold_pressure(np.array([20.2]))[0] / p[1]) / np.log(20.2 / 20.0)
        assert g_below == pytest.approx(4.0 / 3.0, rel=1e-3)
        assert g_above == pytest.approx(3.0, rel=1e-3)

    def test_thermal_component_adds(self):
        eos = HybridCollapseEOS()
        rho = np.array([1.0])
        cold = eos.pressure(rho, np.array([0.0]))[0]
        hot = eos.pressure(rho, np.array([1.0]))[0]
        assert hot > cold

    def test_validation(self):
        with pytest.raises(ValueError):
            IdealGas(gamma=1.0)
        with pytest.raises(ValueError):
            HybridCollapseEOS(gamma1=2.0, gamma2=1.5)
        with pytest.raises(ValueError):
            Polytrope(k=-1.0)


class TestFluxLimiter:
    def test_diffusion_limit(self):
        # R -> 0: lambda -> 1/3 (optically thick diffusion).
        assert flux_limiter(np.array([0.0]))[0] == pytest.approx(1.0 / 3.0)

    def test_streaming_limit(self):
        # R -> inf: lambda -> 1/R (flux capped at c E).
        big = 1e6
        assert flux_limiter(np.array([big]))[0] == pytest.approx(1.0 / big, rel=0.01)

    def test_monotone_decreasing(self):
        r = np.linspace(0, 100, 1000)
        lam = flux_limiter(r)
        assert np.all(np.diff(lam) < 0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            flux_limiter(np.array([-1.0]))
