"""Scale-conformance suite for the SimMPI engine (PR 7).

Pins the properties that make 1000+-rank runs routine *and correct*:

* a fixed workload is deterministic in virtual time at every size,
* per-rank event counts stay bounded as P grows (via the engine's own
  per-rank event budget, so a superlinear regression trips loudly),
* per-rank memory stays under a budget (``tracemalloc``),
* trace timestamps are monotone per rank,
* the tree collectives produce **bit-identical** rank returns to the
  flat engine primitives up to P = 256 (virtual *timing* differs by
  design — the tree models the log-depth network behavior — but the
  simulated program semantics may never diverge),
* the event-budget diagnostic names the hottest rank and the pending
  operations when a run blows its cap, and
* ``trace_sample`` decimation preserves the wait-state classification
  of ``repro.obs.analysis`` within tolerance at a fraction of the
  trace volume.
"""

import tracemalloc
from collections import defaultdict

import pytest

from repro.obs.analysis import wait_summary
from repro.simmpi import EventBudgetError, UniformCost, patterns, run
from repro.simmpi.engine import (
    DEFAULT_EVENTS_PER_RANK,
    DEFAULT_MAX_EVENTS,
    Engine,
)

SCALE_SIZES = (64, 256, 1024)

#: Per-rank budgets the fixed workload must stay inside at every size.
EVENTS_PER_RANK_BUDGET = 400
MEMORY_PER_RANK_BUDGET = 32 * 1024  # bytes


def scale_workload(comm):
    """Fixed mixed workload: compute, neighbor p2p, and collectives.

    Three iterations of work + ring exchange + allreduce, then a
    reduce/bcast pair — the communication mix of one treecode step with
    O(1) per-rank state (no allgather: its result alone is O(P) per
    rank, which would dominate the memory budget this suite pins).
    """
    right = (comm.rank + 1) % comm.size
    total = 0
    for it in range(3):
        yield comm.compute(flops=1e6, label="work")
        req = yield comm.isend((comm.rank, it), dest=right, tag=it)
        got = yield comm.recv(tag=it)
        yield comm.wait(req)
        total += got[0]
        total = yield from patterns.allreduce(comm, total)
    lo = yield from patterns.reduce(comm, total % 1009, root=0)
    lo = yield from patterns.bcast(comm, lo, root=0)
    return total, lo


class TestScaleConformance:
    @pytest.mark.parametrize("size", SCALE_SIZES)
    def test_deterministic_virtual_time(self, size):
        a = run(scale_workload, size, UniformCost(), record_trace=False)
        b = run(scale_workload, size, UniformCost(), record_trace=False)
        assert a.elapsed == b.elapsed
        assert a.clocks == b.clocks
        assert a.returns == b.returns

    @pytest.mark.parametrize("size", SCALE_SIZES)
    def test_bounded_events_per_rank(self, size):
        # The engine's own scale-aware cap is the detector: if event
        # counts grew superlinearly with P, the fixed per-rank budget
        # would trip at the larger sizes.
        res = run(
            scale_workload, size, UniformCost(), record_trace=False,
            max_events_per_rank=EVENTS_PER_RANK_BUDGET,
        )
        assert len(res.returns) == size

    @pytest.mark.parametrize("size", SCALE_SIZES)
    def test_bounded_memory_per_rank(self, size):
        tracemalloc.start()
        try:
            run(scale_workload, size, UniformCost(), record_trace=False)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert peak < size * MEMORY_PER_RANK_BUDGET, (
            f"peak {peak / size / 1024:.1f} KiB/rank at P={size}"
        )

    @pytest.mark.parametrize("size", (64, 256))
    def test_monotone_trace_timestamps(self, size):
        res = run(scale_workload, size, UniformCost())
        by_rank = defaultdict(list)
        for ev in res.trace:
            by_rank[ev.rank].append(ev)
        assert set(by_rank) == set(range(size))
        for events in by_rank.values():
            for prev, cur in zip(events, events[1:]):
                assert cur.t_start >= prev.t_start
                assert cur.t_end >= prev.t_end


class TestFlatTreeBitIdentity:
    """Flat and tree collectives must be indistinguishable to the
    simulated program: every rank's return value bit-identical."""

    @staticmethod
    def _collective_workload(algorithm):
        def prog(comm):
            x = 1.0 / (comm.rank + 3)
            s = yield from patterns.allreduce(comm, x, algorithm=algorithm)
            xs = yield from patterns.allgather(comm, (comm.rank, x), algorithm=algorithm)
            lo = yield from patterns.reduce(comm, x, root=0, algorithm=algorithm)
            lo = yield from patterns.bcast(comm, lo, root=0, algorithm=algorithm)
            yield from patterns.barrier(comm, algorithm=algorithm)
            return s, tuple(xs), lo

        return prog

    @pytest.mark.parametrize("size", (3, 33, 64, 256))
    def test_returns_bit_identical(self, size):
        flat = run(self._collective_workload("flat"), size)
        tree = run(self._collective_workload("tree"), size)
        # repr pins the exact float bits; == would accept near-misses
        # like 0.1+0.2 vs 0.30000000000000004 being "close".
        assert repr(flat.returns) == repr(tree.returns)

    def test_treecode_accelerations_bit_identical(self):
        import numpy as np

        from repro.core.parallel import ParallelConfig, parallel_tree_accelerations

        rng = np.random.default_rng(42)
        pos = rng.random((240, 3))
        auto = parallel_tree_accelerations(
            pos, n_ranks=48, config=ParallelConfig(), record_trace=False,
        )
        forced = patterns.FLAT_COLLECTIVE_MAX
        try:
            # Force the legacy flat/dense path for the same workload.
            patterns.FLAT_COLLECTIVE_MAX = 10_000
            flat = parallel_tree_accelerations(
                pos, n_ranks=48, config=ParallelConfig(), record_trace=False,
            )
        finally:
            patterns.FLAT_COLLECTIVE_MAX = forced
        assert np.array_equal(auto.accelerations, flat.accelerations)
        assert np.array_equal(auto.potentials, flat.potentials)
        assert auto.counts == flat.counts


class TestEventBudget:
    @staticmethod
    def _chatty(comm):
        # Endless ping-pong: never finishes, only the budget stops it.
        right = (comm.rank + 1) % comm.size
        it = 0
        while True:
            req = yield comm.isend(it, dest=right, tag=it % 17)
            yield comm.recv(tag=it % 17)
            yield comm.wait(req)
            it += 1

    def test_diagnostic_names_hottest_rank_and_pending_ops(self):
        with pytest.raises(EventBudgetError) as exc:
            run(self._chatty, 4, max_events=500)
        err = exc.value
        assert "rank" in str(err)
        diag = err.diagnostic
        assert diag["cap"] == 500
        assert diag["size"] == 4
        assert diag["hottest_ranks"], "must name the busiest ranks"
        rank, count = diag["hottest_ranks"][0]
        assert 0 <= rank < 4 and count > 0
        assert isinstance(diag["rank_states"], dict)
        assert {"pending_sends", "pending_recvs", "collectives_in_flight"} <= set(diag)

    def test_per_rank_budget_scales_with_size(self):
        # The same per-rank allowance admits the same program at any
        # size — the fix for the old flat 50M cap that 1000-rank runs
        # exhausted on sheer rank count.
        for size in (4, 32):
            res = run(
                scale_workload, size, record_trace=False,
                max_events_per_rank=EVENTS_PER_RANK_BUDGET,
            )
            assert len(res.returns) == size
        with pytest.raises(EventBudgetError, match="max_events_per_rank"):
            run(self._chatty, 8, max_events_per_rank=50)

    def test_default_cap_never_stricter_than_legacy(self):
        eng = Engine([scale_workload] * 4)
        assert eng._resolve_event_budget(None, None) == max(
            DEFAULT_MAX_EVENTS, 4 * DEFAULT_EVENTS_PER_RANK
        )
        # An explicit max_events is honored verbatim (legacy contract).
        assert eng._resolve_event_budget(123, None) == 123
        assert eng._resolve_event_budget(None, 10) == 40


class TestSampledTracing:
    """``trace_sample`` decimates which ranks emit spans; the wait-state
    *classification* of the surviving spans must stay representative."""

    SIZE = 64

    @staticmethod
    def _blocked_heavy(comm):
        # Uneven compute ahead of collectives: real blocked time with
        # both collective-imbalance and p2p late-sender causes.
        right = (comm.rank + 1) % comm.size
        for it in range(4):
            yield comm.compute(flops=1e6 * (1 + (comm.rank + it) % 4), label="w")
            yield from patterns.allreduce(comm, comm.rank)
            req = yield comm.isend(b"x" * 512, dest=right, tag=it)
            yield comm.recv(tag=it)
            yield comm.wait(req)

    def _summary(self, sample):
        res = run(
            self._blocked_heavy, self.SIZE, UniformCost(),
            trace_sample=sample,
        )
        assert res.trace_sample == sample
        return wait_summary(res.observer), res

    def test_sampled_totals_within_tolerance(self):
        full, res_full = self._summary(1.0)
        half, res_half = self._summary(0.5)
        # Half the ranks traced -> about half the spans and blocked time.
        assert len(res_half.trace) < 0.7 * len(res_full.trace)
        assert full["total_blocked_s"] > 0
        scaled = half["total_blocked_s"] * 2.0
        assert scaled == pytest.approx(full["total_blocked_s"], rel=0.30)
        # The classification *mix* is preserved, not just the total.
        for cause, full_s in full["by_cause"].items():
            if full_s / full["total_blocked_s"] < 0.05:
                continue  # skip trace causes too small to be stable
            frac_full = full_s / full["total_blocked_s"]
            frac_half = half["by_cause"][cause] / half["total_blocked_s"]
            assert frac_half == pytest.approx(frac_full, abs=0.15), cause

    def test_sampling_does_not_touch_semantics_or_time(self):
        a = run(self._blocked_heavy, self.SIZE, UniformCost(), trace_sample=1.0)
        b = run(self._blocked_heavy, self.SIZE, UniformCost(), trace_sample=0.25)
        c = run(self._blocked_heavy, self.SIZE, UniformCost(), record_trace=False)
        assert a.elapsed == b.elapsed == c.elapsed
        assert a.clocks == b.clocks == c.clocks
        assert a.returns == b.returns == c.returns
