"""Tests for repro.bem: the tree-accelerated boundary integral solver."""

import numpy as np
import pytest

from repro.bem import (
    PanelSurface,
    exterior_potential,
    single_layer_matvec,
    solve_dirichlet,
    sphere_panels,
)


class TestPanels:
    def test_sphere_geometry(self):
        s = sphere_panels(500, radius=2.0)
        r = np.linalg.norm(s.centroids, axis=1)
        assert np.allclose(r, 2.0)
        assert s.total_area == pytest.approx(4 * np.pi * 4.0)
        # Outward normals.
        assert np.allclose(np.einsum("ij,ij->i", s.normals, s.centroids), 2.0)

    def test_fibonacci_near_uniform(self):
        s = sphere_panels(400)
        # Nearest-neighbor distances should be tightly clustered.
        d = np.linalg.norm(s.centroids[:, None] - s.centroids[None, :], axis=2)
        np.fill_diagonal(d, np.inf)
        nn = d.min(axis=1)
        assert nn.std() / nn.mean() < 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            sphere_panels(4)
        with pytest.raises(ValueError):
            sphere_panels(100, radius=0.0)
        with pytest.raises(ValueError):
            PanelSurface(np.zeros((3, 3)), np.zeros(3), np.zeros((3, 3)))


class TestMatvec:
    def test_tree_matches_direct(self):
        s = sphere_panels(300)
        rng = np.random.default_rng(0)
        sigma = rng.standard_normal(300)
        direct = single_layer_matvec(s, sigma, theta=None)
        tree = single_layer_matvec(s, sigma, theta=0.3)
        assert np.allclose(tree, direct, rtol=2e-3, atol=1e-5)

    def test_operator_symmetric_positive(self):
        # x^T S x > 0 for the single-layer operator on a closed surface.
        s = sphere_panels(200)
        rng = np.random.default_rng(1)
        for _ in range(3):
            x = rng.standard_normal(200)
            assert x @ single_layer_matvec(s, x, theta=None) > 0

    def test_validation(self):
        s = sphere_panels(100)
        with pytest.raises(ValueError):
            single_layer_matvec(s, np.zeros(50))


class TestDirichletSphere:
    def test_uniform_sphere_density(self):
        # A sphere at constant potential phi0 has uniform density
        # sigma = phi0 / R (since S[sigma] = sigma R on the surface).
        radius = 1.5
        phi0 = 2.0
        s = sphere_panels(600, radius=radius)
        sigma, iters = solve_dirichlet(s, np.full(600, phi0), theta=None)
        assert iters < 100
        expected = phi0 / radius
        assert np.median(sigma) == pytest.approx(expected, rel=0.05)
        assert sigma.std() / sigma.mean() < 0.1

    def test_exterior_field_decays_like_point_charge(self):
        radius, phi0 = 1.0, 1.0
        s = sphere_panels(600, radius=radius)
        sigma, _ = solve_dirichlet(s, np.full(600, phi0), theta=None)
        for r_eval in (2.0, 4.0, 8.0):
            pts = np.array([[r_eval, 0.0, 0.0], [0.0, 0.0, -r_eval]])
            phi = exterior_potential(s, sigma, pts)
            assert np.allclose(phi, phi0 * radius / r_eval, rtol=0.03), r_eval

    def test_tree_accelerated_solve_agrees(self):
        s = sphere_panels(400)
        bc = np.full(400, 1.0)
        sig_d, _ = solve_dirichlet(s, bc, theta=None)
        sig_t, _ = solve_dirichlet(s, bc, theta=0.3)
        assert np.allclose(sig_t, sig_d, rtol=0.02, atol=1e-4)

    def test_linearity(self):
        s = sphere_panels(300)
        sig1, _ = solve_dirichlet(s, np.full(300, 1.0), theta=None)
        sig3, _ = solve_dirichlet(s, np.full(300, 3.0), theta=None)
        assert np.allclose(sig3, 3.0 * sig1, rtol=1e-4)

    def test_validation(self):
        s = sphere_panels(100)
        with pytest.raises(ValueError):
            solve_dirichlet(s, np.zeros(99))
        with pytest.raises(ValueError):
            exterior_potential(s, np.zeros(100), s.centroids[:1])
