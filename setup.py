"""Setuptools shim.

The execution environment has no network and no ``wheel`` package, so
``pip install -e .`` cannot build the editable wheel modern pip wants.
``python setup.py develop`` (or ``pip install -e . --no-build-isolation``
on hosts that do have wheel) installs the package; all metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
